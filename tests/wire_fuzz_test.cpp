/// Fuzz the frame decoder: feed it mutated frames, truncations, and raw
/// random bytes in adversarial chunkings and assert it never crashes,
/// never reads out of range (ASan-checked under the `asan` preset via
/// the wire-asan-smoke CTest), and keeps its typed-status contract —
/// errors latch, valid frames decode, and kNeedMore never lies.
///
/// Iteration count defaults to 100000 and can be raised via the
/// ICOLLECT_WIRE_FUZZ_ITERS environment variable for soak runs.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <variant>
#include <vector>

#include "common/crc32.h"
#include "gf/gf256.h"
#include "proto/integrity.h"
#include "sim/random.h"
#include "wire/frame.h"
#include "wire/message.h"

namespace icollect::wire {
namespace {

std::size_t fuzz_iterations() {
  if (const char* env = std::getenv("ICOLLECT_WIRE_FUZZ_ITERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 100000;
}

coding::CodedBlock random_block(sim::Rng& rng) {
  coding::CodedBlock b;
  b.segment.origin = static_cast<std::uint32_t>(rng.uniform_index(1U << 16U));
  b.segment.seq = static_cast<std::uint32_t>(rng.uniform_index(1U << 16U));
  b.coefficients.resize(1 + rng.uniform_index(8));
  do {
    rng.fill_gf(b.coefficients);
  } while (b.is_degenerate());
  b.payload.resize(rng.uniform_index(48));
  for (auto& byte : b.payload) {
    byte = static_cast<std::uint8_t>(rng.gf_element());
  }
  return b;
}

Message random_message(sim::Rng& rng) {
  switch (rng.uniform_index(7)) {
    case 0: {
      Hello h;
      h.role = rng.bernoulli(0.5) ? NodeRole::kServer : NodeRole::kPeer;
      h.node_id = static_cast<std::uint32_t>(rng.uniform_index(1U << 20U));
      h.segment_size = static_cast<std::uint16_t>(1 + rng.uniform_index(64));
      h.buffer_cap = static_cast<std::uint32_t>(rng.uniform_index(1024));
      return Message{h};
    }
    case 1:
      return Message{GossipBlock{random_block(rng)}};
    case 2: {
      // All three encodings: legacy 4-byte, flags-only, flags + want id.
      PullRequest p;
      p.token = static_cast<std::uint32_t>(rng.uniform_index(1U << 24U));
      p.want_summary = rng.bernoulli(0.5);
      if (rng.bernoulli(0.5)) {
        p.want = coding::SegmentId{
            static_cast<std::uint32_t>(rng.uniform_index(1U << 16U)),
            static_cast<std::uint32_t>(rng.uniform_index(1U << 16U))};
      }
      return Message{p};
    }
    case 3: {
      PullBlock p;
      p.token = static_cast<std::uint32_t>(rng.uniform_index(1U << 24U));
      p.occupancy = static_cast<std::uint32_t>(rng.uniform_index(256));
      p.has_block = rng.bernoulli(0.7);
      if (p.has_block) p.block = random_block(rng);
      return Message{p};
    }
    case 4:
      return Message{SegmentDecodedAck{coding::SegmentId{
          static_cast<std::uint32_t>(rng.uniform_index(1U << 16U)),
          static_cast<std::uint32_t>(rng.uniform_index(1U << 16U))}}};
    case 5:
      return Message{Bye{static_cast<ByeReason>(rng.uniform_index(4))}};
    default: {
      BufferSummary s;
      s.segments.resize(rng.uniform_index(12));
      for (auto& id : s.segments) {
        id.origin = static_cast<std::uint32_t>(rng.uniform_index(1U << 16U));
        id.seq = static_cast<std::uint32_t>(rng.uniform_index(1U << 16U));
      }
      return Message{s};
    }
  }
}

/// Feed `stream` to a fresh decoder in random chunks and drain it,
/// checking the status contract at every step. Returns frames decoded.
std::uint64_t drain(sim::Rng& rng, const std::vector<std::uint8_t>& stream) {
  FrameDecoder dec;
  std::size_t at = 0;
  bool errored = false;
  while (at < stream.size()) {
    const std::size_t n =
        std::min(stream.size() - at, 1 + rng.uniform_index(64));
    dec.feed({stream.data() + at, n});
    at += n;
    for (;;) {
      const auto res = dec.next();
      if (res.status == DecodeStatus::kFrame) {
        EXPECT_FALSE(errored) << "frame after latched error";
        continue;
      }
      if (res.status == DecodeStatus::kNeedMore) break;
      // Typed error: it must latch — the same status forever after.
      errored = true;
      EXPECT_TRUE(is_error(res.status));
      EXPECT_EQ(dec.next().status, res.status);
      break;
    }
    if (errored) break;
  }
  return dec.frames_decoded();
}

TEST(WireFuzz, MutatedFramesNeverCrash) {
  sim::Rng rng{0xF0221};
  const std::size_t iters = fuzz_iterations();
  std::uint64_t decoded = 0;
  std::uint64_t clean = 0;
  for (std::size_t i = 0; i < iters; ++i) {
    std::vector<std::uint8_t> stream;
    const std::size_t frames = 1 + rng.uniform_index(3);
    for (std::size_t f = 0; f < frames; ++f) {
      encode_frame(random_message(rng), stream);
    }
    const double roll = rng.uniform();
    if (roll < 0.35) {
      // Bit flips anywhere in the stream (header, length, CRC, body).
      const std::size_t flips = 1 + rng.uniform_index(4);
      for (std::size_t f = 0; f < flips; ++f) {
        stream[rng.uniform_index(stream.size())] ^=
            static_cast<std::uint8_t>(1U << rng.uniform_index(8));
      }
    } else if (roll < 0.55) {
      // Truncation mid-frame.
      stream.resize(rng.uniform_index(stream.size()));
    } else if (roll < 0.7) {
      // Garbage prefix/suffix around otherwise valid frames.
      std::vector<std::uint8_t> noise(1 + rng.uniform_index(24));
      for (auto& b : noise) {
        b = static_cast<std::uint8_t>(rng.uniform_index(256));
      }
      if (rng.bernoulli(0.5)) {
        stream.insert(stream.begin(), noise.begin(), noise.end());
      } else {
        stream.insert(stream.end(), noise.begin(), noise.end());
      }
    } else if (roll < 0.8) {
      // Pure random bytes — no valid framing at all.
      stream.assign(1 + rng.uniform_index(96), 0);
      for (auto& b : stream) {
        b = static_cast<std::uint8_t>(rng.uniform_index(256));
      }
    } else {
      ++clean;  // leave the stream valid: every frame must decode
      const std::uint64_t got = drain(rng, stream);
      EXPECT_EQ(got, frames) << "valid stream lost frames";
      continue;
    }
    if (!stream.empty()) decoded += drain(rng, stream);
  }
  // Sanity: the corpus actually exercised both paths.
  EXPECT_GT(clean, iters / 10);
  EXPECT_GT(decoded, 0U);  // truncations often keep whole leading frames
}

TEST(WireFuzz, HostileLengthPrefixesStayBounded) {
  // Headers with every interesting length value: the decoder must cap
  // allocation at max_body and never ask for more than advertised.
  sim::Rng rng{0xF0222};
  for (std::uint32_t len :
       {0U, 1U, 0xFFFFU, (1U << 20U), (1U << 20U) + 1, 0x7FFFFFFFU,
        0xFFFFFFFFU}) {
    std::vector<std::uint8_t> header(kFrameHeaderBytes, 0);
    std::copy(kMagic.begin(), kMagic.end(), header.begin());
    header[4] = kProtocolVersion;
    header[5] = static_cast<std::uint8_t>(MessageType::kPullRequest);
    header[8] = static_cast<std::uint8_t>(len);
    header[9] = static_cast<std::uint8_t>(len >> 8U);
    header[10] = static_cast<std::uint8_t>(len >> 16U);
    header[11] = static_cast<std::uint8_t>(len >> 24U);
    FrameDecoder dec;
    dec.feed(header);
    const auto res = dec.next();
    if (len > dec.max_body_bytes()) {
      EXPECT_EQ(res.status, DecodeStatus::kOversized) << len;
    } else if (len == 0) {
      // A zero-length body is a *complete* frame (the empty body even
      // CRCs to the zeroed header field) — it must die in body parsing,
      // not crash or hand out a message.
      EXPECT_EQ(res.status, DecodeStatus::kMalformedBody) << len;
    } else {
      EXPECT_EQ(res.status, DecodeStatus::kNeedMore) << len;
      EXPECT_LE(dec.buffered_bytes(), kFrameHeaderBytes);
    }
  }
  (void)rng;
}

TEST(WireFuzz, BodyMutationsNeverSlipPollutedBlocks) {
  // The adversary this corpus models recomputes the frame CRC after
  // tampering (a CRC is framing, not security), so every mutated frame
  // reaches body parsing. The contract under test: a byte flipped
  // anywhere inside an otherwise-valid GOSSIP_BLOCK body either fails
  // decoding with a typed latched error, or decodes into a block that
  // the integrity check rejects with a typed verdict — never into a
  // block that verifies clean.
  sim::Rng rng{0xF0223};
  proto::IntegrityAuthority auth{proto::IntegrityParams{0xB10C5ULL, 4}};
  const coding::SegmentId id{7, 3};
  constexpr std::size_t kS = 4;
  constexpr std::size_t kLen = 24;
  std::vector<std::vector<std::uint8_t>> originals(kS);
  for (auto& b : originals) {
    b.resize(kLen);
    for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.gf_element());
  }
  auth.register_segment(id, originals);

  coding::CodedBlock block;
  block.segment = id;
  block.coefficients.resize(kS);
  do {
    rng.fill_gf(block.coefficients);
  } while (block.is_degenerate());
  block.payload.assign(kLen, 0);
  for (std::size_t k = 0; k < kS; ++k) {
    for (std::size_t i = 0; i < kLen; ++i) {
      block.payload[i] = gf::GF256::add(
          block.payload[i],
          gf::GF256::mul(block.coefficients[k], originals[k][i]));
    }
  }
  const std::vector<std::uint8_t> frame =
      encoded_frame(Message{GossipBlock{block}});

  const auto patch_crc = [](std::vector<std::uint8_t>& f) {
    const std::uint32_t crc = common::crc32(
        {f.data() + kFrameHeaderBytes, f.size() - kFrameHeaderBytes});
    f[12] = static_cast<std::uint8_t>(crc);
    f[13] = static_cast<std::uint8_t>(crc >> 8U);
    f[14] = static_cast<std::uint8_t>(crc >> 16U);
    f[15] = static_cast<std::uint8_t>(crc >> 24U);
  };

  std::uint64_t decode_rejected = 0;
  std::uint64_t unknown_segment = 0;
  std::uint64_t shape_mismatch = 0;
  std::uint64_t check_failed = 0;
  std::uint64_t escapes = 0;
  const auto probe = [&](std::vector<std::uint8_t> f) {
    patch_crc(f);
    FrameDecoder dec;
    dec.feed(f);
    const auto res = dec.next();
    if (res.status != DecodeStatus::kFrame) {
      EXPECT_TRUE(is_error(res.status)) << to_string(res.status);
      EXPECT_EQ(dec.next().status, res.status);  // errors latch
      ++decode_rejected;
      return;
    }
    // Body flips cannot change the message type (it lives in the
    // header, which this corpus leaves alone).
    ASSERT_TRUE(std::holds_alternative<GossipBlock>(res.message));
    switch (auth.verify(std::get<GossipBlock>(res.message).block)) {
      case proto::VerifyResult::kOk: ++escapes; break;
      case proto::VerifyResult::kUnknownSegment: ++unknown_segment; break;
      case proto::VerifyResult::kShapeMismatch: ++shape_mismatch; break;
      case proto::VerifyResult::kCheckFailed: ++check_failed; break;
    }
  };

  // Sanity: the unmutated frame decodes and verifies clean.
  {
    std::vector<std::uint8_t> clean = frame;
    FrameDecoder dec;
    dec.feed(clean);
    const auto res = dec.next();
    ASSERT_EQ(res.status, DecodeStatus::kFrame);
    ASSERT_EQ(auth.verify(std::get<GossipBlock>(res.message).block),
              proto::VerifyResult::kOk);
  }

  // Exhaustive single-bit flips over every body byte: segment id flips
  // land in kUnknownSegment, length-field flips die in body parsing,
  // coefficient/payload flips land in kCheckFailed.
  for (std::size_t i = kFrameHeaderBytes; i < frame.size(); ++i) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> f = frame;
      f[i] ^= static_cast<std::uint8_t>(1U << bit);
      probe(f);
    }
  }
  // Random multi-byte mutations for corpus breadth (1–4 flips).
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<std::uint8_t> f = frame;
    const std::size_t flips = 1 + rng.uniform_index(4);
    for (std::size_t k = 0; k < flips; ++k) {
      const std::size_t at =
          kFrameHeaderBytes + rng.uniform_index(f.size() - kFrameHeaderBytes);
      f[at] ^= static_cast<std::uint8_t>(1 + rng.uniform_index(255));
    }
    probe(f);
  }

  EXPECT_EQ(escapes, 0U) << "a mutated block verified clean";
  // The corpus exercised every rejection tier.
  EXPECT_GT(decode_rejected, 0U);
  EXPECT_GT(unknown_segment, 0U);
  EXPECT_GT(check_failed, 0U);
}

}  // namespace
}  // namespace icollect::wire
