/// Tests for the bulk GF(2^8) vector kernels.

#include <gtest/gtest.h>

#include <vector>

#include "gf/gf256.h"
#include "gf/gf_vector.h"
#include "sim/random.h"

namespace icollect::gf {
namespace {

std::vector<Element> random_vec(std::size_t n, sim::Rng& rng) {
  std::vector<Element> v(n);
  rng.fill_gf(v);
  return v;
}

TEST(GfVector, AddAssignIsElementwiseXor) {
  std::vector<Element> a{1, 2, 3, 0xFF};
  const std::vector<Element> b{1, 0x10, 0x20, 0xFF};
  add_assign(a, b);
  EXPECT_EQ(a, (std::vector<Element>{0, 0x12, 0x23, 0}));
}

TEST(GfVector, AddAssignSelfInverse) {
  sim::Rng rng{7};
  auto a = random_vec(64, rng);
  const auto b = random_vec(64, rng);
  const auto a0 = a;
  add_assign(a, b);
  add_assign(a, b);
  EXPECT_EQ(a, a0);
}

TEST(GfVector, AddAssignSizeMismatchViolatesContract) {
  std::vector<Element> a(4), b(5);
  EXPECT_THROW(add_assign(a, b), ContractViolation);
}

TEST(GfVector, ScaleByOneIsNoop) {
  sim::Rng rng{8};
  auto a = random_vec(33, rng);
  const auto a0 = a;
  scale_assign(a, 1);
  EXPECT_EQ(a, a0);
}

TEST(GfVector, ScaleByZeroZeroes) {
  sim::Rng rng{9};
  auto a = random_vec(33, rng);
  scale_assign(a, 0);
  EXPECT_TRUE(is_zero(a));
}

TEST(GfVector, ScaleMatchesScalarMul) {
  sim::Rng rng{10};
  auto a = random_vec(50, rng);
  const auto a0 = a;
  const Element c = 0xB7;
  scale_assign(a, c);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], GF256::mul(c, a0[i]));
  }
}

TEST(GfVector, ScaleThenInverseScaleRestores) {
  sim::Rng rng{11};
  auto a = random_vec(40, rng);
  const auto a0 = a;
  const Element c = 0x53;
  scale_assign(a, c);
  scale_assign(a, GF256::inv(c));
  EXPECT_EQ(a, a0);
}

TEST(GfVector, AddScaledMatchesManual) {
  sim::Rng rng{12};
  auto dst = random_vec(64, rng);
  const auto dst0 = dst;
  const auto src = random_vec(64, rng);
  const Element c = 0x2A;
  add_scaled(dst, src, c);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    EXPECT_EQ(dst[i], GF256::add(dst0[i], GF256::mul(c, src[i])));
  }
}

TEST(GfVector, AddScaledZeroCoefficientIsNoop) {
  sim::Rng rng{13};
  auto dst = random_vec(16, rng);
  const auto dst0 = dst;
  add_scaled(dst, random_vec(16, rng), 0);
  EXPECT_EQ(dst, dst0);
}

TEST(GfVector, AddScaledOneEqualsAddAssign) {
  sim::Rng rng{14};
  auto dst1 = random_vec(16, rng);
  auto dst2 = dst1;
  const auto src = random_vec(16, rng);
  add_scaled(dst1, src, 1);
  add_assign(dst2, src);
  EXPECT_EQ(dst1, dst2);
}

TEST(GfVector, DotIsSymmetricAndBilinear) {
  sim::Rng rng{15};
  const auto a = random_vec(20, rng);
  const auto b = random_vec(20, rng);
  EXPECT_EQ(dot(a, b), dot(b, a));
  // dot(c*a, b) == c * dot(a, b)
  const Element c = 0x9D;
  auto ca = a;
  scale_assign(ca, c);
  EXPECT_EQ(dot(ca, b), GF256::mul(c, dot(a, b)));
}

TEST(GfVector, DotOfEmptyIsZero) {
  std::vector<Element> empty;
  EXPECT_EQ(dot(empty, empty), 0);
}

TEST(GfVector, IsZeroAndLeadingIndex) {
  std::vector<Element> v{0, 0, 5, 0, 7};
  EXPECT_FALSE(is_zero(v));
  EXPECT_EQ(leading_index(v), 2u);
  std::vector<Element> z(8, 0);
  EXPECT_TRUE(is_zero(z));
  EXPECT_EQ(leading_index(z), z.size());
  std::vector<Element> empty;
  EXPECT_TRUE(is_zero(empty));
  EXPECT_EQ(leading_index(empty), 0u);
}

}  // namespace
}  // namespace icollect::gf
