/// \file obs_metrics_registry_test.cpp
/// Registry semantics: find-or-create stability, kind-mismatch errors,
/// pull-based gauges, histogram and latency column expansion, export
/// ordering, and whole-registry reset() for test isolation.

#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace {

using icollect::obs::MetricsRegistry;

TEST(MetricsRegistry, CounterFindOrCreateIsStable) {
  MetricsRegistry reg;
  auto& a = reg.counter("events");
  a.inc();
  a.inc(4);
  auto& b = reg.counter("events");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 5U);
  EXPECT_EQ(reg.size(), 1U);
  b.reset();
  EXPECT_EQ(a.value(), 0U);
}

TEST(MetricsRegistry, ReferencesSurviveGrowth) {
  MetricsRegistry reg;
  auto& first = reg.counter("first");
  first.inc();
  // Force internal vector growth; the handle must stay valid.
  for (int i = 0; i < 100; ++i) {
    reg.counter("c" + std::to_string(i)).inc();
  }
  first.inc();
  EXPECT_EQ(reg.counter("first").value(), 2U);
}

TEST(MetricsRegistry, GaugePushAndPull) {
  MetricsRegistry reg;
  auto& push = reg.gauge("push");
  push.set(2.5);
  EXPECT_DOUBLE_EQ(push.value(), 2.5);

  double source = 1.0;
  reg.gauge("pull", [&source] { return source; });
  source = 42.0;  // read lazily, at sample time
  EXPECT_DOUBLE_EQ(reg.find_gauge("pull")->value(), 42.0);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x", 0.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(reg.latency("x"), std::invalid_argument);
  reg.gauge("g");
  EXPECT_THROW(reg.counter("g"), std::invalid_argument);
}

TEST(MetricsRegistry, DuplicateRegistrationContract) {
  // Same name + same kind: find-or-create returns the original and the
  // registry does not grow. Same name + different kind: throws, and the
  // failed call must not have disturbed the existing metric.
  MetricsRegistry reg;
  auto& lat = reg.latency("rtt");
  lat.record(100);
  EXPECT_EQ(&reg.latency("rtt"), &lat);
  EXPECT_EQ(reg.size(), 1U);
  EXPECT_THROW(reg.counter("rtt"), std::invalid_argument);
  EXPECT_THROW(reg.gauge("rtt"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("rtt", 0.0, 1.0, 4), std::invalid_argument);
  EXPECT_EQ(reg.size(), 1U);
  EXPECT_EQ(reg.latency("rtt").count(), 1U);
}

TEST(MetricsRegistry, Lookups) {
  MetricsRegistry reg;
  reg.counter("c");
  reg.gauge("g");
  EXPECT_TRUE(reg.contains("c"));
  EXPECT_TRUE(reg.contains("g"));
  EXPECT_FALSE(reg.contains("missing"));
  EXPECT_NE(reg.find_counter("c"), nullptr);
  EXPECT_EQ(reg.find_counter("g"), nullptr);
  EXPECT_NE(reg.find_gauge("g"), nullptr);
  EXPECT_EQ(reg.find_gauge("missing"), nullptr);
}

TEST(MetricsRegistry, ExportOrderIsRegistrationOrder) {
  MetricsRegistry reg;
  reg.counter("zulu");
  reg.gauge("alpha");
  reg.counter("mike");
  const auto names = reg.sample_names();
  ASSERT_EQ(names.size(), 3U);
  EXPECT_EQ(names[0], "zulu");
  EXPECT_EQ(names[1], "alpha");
  EXPECT_EQ(names[2], "mike");
}

TEST(MetricsRegistry, HistogramExpandsToQuantileColumns) {
  MetricsRegistry reg;
  auto& h = reg.histogram("delay", 0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10));

  const auto names = reg.sample_names();
  ASSERT_EQ(names.size(), 4U);
  EXPECT_EQ(names[0], "delay.count");
  EXPECT_EQ(names[1], "delay.p50");
  EXPECT_EQ(names[2], "delay.p90");
  EXPECT_EQ(names[3], "delay.p99");

  double count = -1.0;
  reg.for_each_sample([&](std::string_view name, double v) {
    if (name == "delay.count") count = v;
  });
  EXPECT_DOUBLE_EQ(count, 100.0);
}

TEST(MetricsRegistry, LatencyExpandsToQuantileAndMaxColumns) {
  MetricsRegistry reg;
  auto& h = reg.latency("rtt");
  h.record_seconds(0.001);
  h.record_seconds(0.003);

  const auto names = reg.sample_names();
  ASSERT_EQ(names.size(), 5U);
  EXPECT_EQ(names[0], "rtt.count");
  EXPECT_EQ(names[1], "rtt.p50");
  EXPECT_EQ(names[2], "rtt.p90");
  EXPECT_EQ(names[3], "rtt.p99");
  EXPECT_EQ(names[4], "rtt.max");

  double count = -1.0;
  double max = -1.0;
  reg.for_each_sample([&](std::string_view name, double v) {
    if (name == "rtt.count") count = v;
    if (name == "rtt.max") max = v;
  });
  EXPECT_DOUBLE_EQ(count, 2.0);
  EXPECT_NEAR(max, 0.003, 1e-12);
  EXPECT_NE(reg.find_latency("rtt"), nullptr);
  EXPECT_EQ(reg.find_latency("missing"), nullptr);
}

TEST(MetricsRegistry, ResetZeroesValuesKeepsStructure) {
  MetricsRegistry reg;
  auto& c = reg.counter("c");
  c.inc(9);
  auto& pushed = reg.gauge("pushed");
  pushed.set(3.5);
  double source = 11.0;
  reg.gauge("pulled", [&source] { return source; });
  auto& h = reg.histogram("h", 0.0, 10.0, 5);
  h.add(4.0);
  auto& lat = reg.latency("lat");
  lat.record(1000);
  const auto names_before = reg.sample_names();

  reg.reset();

  // Values are zeroed...
  EXPECT_EQ(c.value(), 0U);
  EXPECT_DOUBLE_EQ(pushed.value(), 0.0);
  EXPECT_EQ(lat.count(), 0U);
  double hist_count = -1.0;
  reg.for_each_sample([&](std::string_view name, double v) {
    if (name == "h.count") hist_count = v;
  });
  EXPECT_DOUBLE_EQ(hist_count, 0.0);
  // ...but registrations, references, export order, and gauge providers
  // all survive: the same handles keep working.
  EXPECT_EQ(reg.sample_names(), names_before);
  EXPECT_DOUBLE_EQ(reg.find_gauge("pulled")->value(), source);
  c.inc();
  EXPECT_EQ(reg.counter("c").value(), 1U);
  lat.record(5);
  EXPECT_EQ(reg.latency("lat").count(), 1U);
}

TEST(MetricsRegistry, ForEachSampleValues) {
  MetricsRegistry reg;
  reg.counter("c").inc(7);
  reg.gauge("g").set(-1.5);
  std::vector<std::pair<std::string, double>> seen;
  reg.for_each_sample([&](std::string_view name, double v) {
    seen.emplace_back(std::string{name}, v);
  });
  ASSERT_EQ(seen.size(), 2U);
  EXPECT_EQ(seen[0].first, "c");
  EXPECT_DOUBLE_EQ(seen[0].second, 7.0);
  EXPECT_EQ(seen[1].first, "g");
  EXPECT_DOUBLE_EQ(seen[1].second, -1.5);
}

}  // namespace
