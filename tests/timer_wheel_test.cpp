/// Focused contract tests for the hashed TimerWheel, the single clock
/// behind every live-node behavior: multi-timer fire ordering across
/// ticks, O(1) cancellation semantics (including cancel of an entry
/// already re-filed into a future wheel round), re-arming after fire,
/// and wrap-around past multiple revolutions of a small wheel.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/timer_wheel.h"

namespace icollect::net {
namespace {

TEST(TimerWheelContract, FiresInDueOrderAcrossTicks) {
  TimerWheel w{0.01};
  std::string order;
  w.schedule_after(0.03, [&] { order += 'c'; });
  w.schedule_after(0.01, [&] { order += 'a'; });
  w.schedule_after(0.02, [&] { order += 'b'; });
  w.schedule_after(0.03, [&] { order += 'd'; });  // same tick as 'c'
  w.advance(5);
  // Due time dominates; within a tick, scheduling order breaks ties.
  EXPECT_EQ(order, "abcd");
}

TEST(TimerWheelContract, CancelReturnsTrueOnlyWhilePending) {
  TimerWheel w{0.01};
  int fired = 0;
  const auto id = w.schedule_after(0.02, [&] { ++fired; });
  EXPECT_TRUE(w.cancel(id));
  EXPECT_FALSE(w.cancel(id));                   // double cancel
  EXPECT_FALSE(w.cancel(TimerWheel::kInvalidTimer));
  EXPECT_FALSE(w.cancel(id + 1000));            // never-issued id
  w.advance(5);
  EXPECT_EQ(fired, 0);
}

TEST(TimerWheelContract, CancelAfterFireIsFalse) {
  TimerWheel w{0.01};
  int fired = 0;
  const auto id = w.schedule_after(0.01, [&] { ++fired; });
  w.advance(2);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(w.cancel(id));  // already fired, nothing pending
  EXPECT_EQ(w.pending(), 0U);
}

TEST(TimerWheelContract, CancelEntryFiledIntoFutureRound) {
  // On a 4-slot wheel, a 10-tick delay hashes into a slot the wheel
  // crosses twice before the timer is due. Cancelling must survive the
  // re-filing of the future-round entry.
  TimerWheel w{0.01, 4};
  int fired = 0;
  const auto id = w.schedule_after(0.10, [&] { ++fired; });
  w.advance(6);  // crosses the slot once; the entry gets re-filed
  EXPECT_TRUE(w.cancel(id));
  w.advance(20);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(w.pending(), 0U);
}

TEST(TimerWheelContract, CancelOneOfManyInSameSlot) {
  TimerWheel w{0.01};
  std::string order;
  w.schedule_after(0.01, [&] { order += 'a'; });
  const auto id = w.schedule_after(0.01, [&] { order += 'b'; });
  w.schedule_after(0.01, [&] { order += 'c'; });
  EXPECT_TRUE(w.cancel(id));
  w.advance(1);
  EXPECT_EQ(order, "ac");
}

TEST(TimerWheelContract, ReArmAfterFireGetsFreshId) {
  TimerWheel w{0.01};
  std::vector<double> fired;
  TimerWheel::TimerId first = w.schedule_after(0.01, [&] {
    fired.push_back(w.now());
  });
  w.advance(1);
  ASSERT_EQ(fired.size(), 1U);
  // Re-arm the same logical timer; the new id must be distinct and the
  // old id must stay dead (cancel(old) is a no-op, not a misfire).
  TimerWheel::TimerId second = w.schedule_after(0.01, [&] {
    fired.push_back(w.now());
  });
  EXPECT_NE(second, first);
  EXPECT_FALSE(w.cancel(first));
  w.advance(1);
  ASSERT_EQ(fired.size(), 2U);
  EXPECT_NEAR(fired[1] - fired[0], 0.01, 1e-9);
}

TEST(TimerWheelContract, PeriodicReArmFromInsideCallback) {
  TimerWheel w{0.01};
  std::vector<double> fired;
  std::function<void()> tick = [&] {
    fired.push_back(w.now());
    if (fired.size() < 4) w.schedule_after(0.02, tick);
  };
  w.schedule_after(0.02, tick);
  w.advance(20);
  ASSERT_EQ(fired.size(), 4U);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_NEAR(fired[i] - fired[i - 1], 0.02, 1e-9);
  }
}

TEST(TimerWheelContract, WrapAroundSeveralRevolutions) {
  // 4-slot wheel, delays spanning 1..3 full revolutions, interleaved
  // with short timers that share slots with the long ones.
  TimerWheel w{0.01, 4};
  std::vector<int> fired;
  w.schedule_after(0.12, [&] { fired.push_back(12); });  // 3 revolutions
  w.schedule_after(0.04, [&] { fired.push_back(4); });   // 1 revolution
  w.schedule_after(0.08, [&] { fired.push_back(8); });   // 2 revolutions
  w.schedule_after(0.02, [&] { fired.push_back(2); });
  w.advance(12);
  EXPECT_EQ(fired, (std::vector<int>{2, 4, 8, 12}));
  w.advance(100);
  EXPECT_EQ(fired.size(), 4U);  // nothing fires twice
}

TEST(TimerWheelContract, PendingTracksLifecycle) {
  TimerWheel w{0.01};
  EXPECT_EQ(w.pending(), 0U);
  const auto a = w.schedule_after(0.01, [] {});
  const auto b = w.schedule_after(0.05, [] {});
  (void)a;
  EXPECT_EQ(w.pending(), 2U);
  w.advance(1);  // 'a' fires
  EXPECT_EQ(w.pending(), 1U);
  w.cancel(b);
  EXPECT_EQ(w.pending(), 0U);
}

TEST(TimerWheelContract, AdvanceToIsIdempotentAtTarget) {
  TimerWheel w{0.01};
  int fired = 0;
  w.schedule_after(0.05, [&] { ++fired; });
  w.advance_to(0.05);
  EXPECT_EQ(fired, 1);
  const auto tick_before = w.now_tick();
  w.advance_to(0.05);  // already there: must not advance further
  EXPECT_EQ(w.now_tick(), tick_before);
}

}  // namespace
}  // namespace icollect::net
