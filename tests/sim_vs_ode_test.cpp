/// Cross-validation: the event-driven simulation (run at the paper's
/// state-counter fidelity, which is exactly the process the ODEs are the
/// fluid limit of) must agree with the ODE steady state. This is the
/// reproduction's core correctness argument: two independent
/// implementations of Sec. 2/Sec. 3 meeting in the middle.
///
/// Statistically sound form: each scenario runs R = 8 independent
/// replicas through the replica engine and the ODE prediction must land
/// inside `sim mean ± (finite-N allowance + 95% CI)`. The CI term makes
/// the check honest about Monte-Carlo noise; the allowance term is the
/// empirically calibrated systematic gap between the N-peer simulation
/// and the N→∞ fluid limit (it shrinks with N, so tightening the
/// population would let it tighten too). A single lucky run can no
/// longer pass, and an unlucky seed can no longer fail.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/collection_system.h"
#include "ode/closed_form.h"
#include "runner/replica_runner.h"

namespace icollect {
namespace {

runner::ThreadPool& shared_pool() {
  static runner::ThreadPool pool{runner::ThreadPool::resolve_jobs(0)};
  return pool;
}

struct Scenario {
  double lambda;
  double mu;
  double c;
  std::size_t s;
};

constexpr std::uint64_t kSeedRoot = 1234;
constexpr std::size_t kReplicas = 8;

/// Aggregate over R replicas of one scenario; `cell` keys the seed tree
/// so scenarios never share RNG streams.
runner::AggregateReport run_scenario(const p2p::ProtocolConfig& cfg,
                                     std::uint64_t cell) {
  runner::ReplicaPlan plan;
  plan.config = cfg;
  plan.warm = 10.0;
  plan.measure = 22.0;
  plan.replicas = kReplicas;
  plan.cell = cell;
  const runner::ReplicaRunner engine{runner::SeedSequence{kSeedRoot}};
  return engine.run(plan, shared_pool());
}

p2p::ProtocolConfig scenario_config(const Scenario& sc) {
  p2p::ProtocolConfig cfg;
  cfg.num_peers = 150;
  cfg.lambda = sc.lambda;
  cfg.mu = sc.mu;
  cfg.gamma = 1.0;
  cfg.segment_size = sc.s;
  cfg.buffer_cap = 150;
  cfg.num_servers = 4;
  cfg.set_normalized_capacity(sc.c);
  cfg.fidelity = p2p::CollectionFidelity::kStateCounter;
  return cfg;
}

class SimVsOdeTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(SimVsOdeTest, SteadyStateAgreementWithinCi) {
  const Scenario sc = GetParam();
  const auto cfg = scenario_config(sc);
  // Cell index = a stable encoding of the scenario, so adding scenarios
  // never reshuffles existing streams.
  const auto cell = static_cast<std::uint64_t>(
      sc.lambda * 1000.0 + sc.mu * 100.0 + sc.c * 10.0 +
      static_cast<double>(sc.s));
  const auto agg = run_scenario(cfg, cell);
  ASSERT_EQ(agg.replicas(), kReplicas);
  const auto sol = CollectionSystem::analyze(cfg);

  // Storage (Theorem 1): tight agreement — the calibrated finite-N
  // allowance is 2% of rho; the CI absorbs replica noise.
  EXPECT_NEAR(agg.mean("mean_blocks_per_peer"), sol.rho(),
              0.02 * sol.rho() + agg.ci95("mean_blocks_per_peer"));

  // Throughput (Theorem 2): the finite-N sim runs a few percent below
  // the fluid limit, systematically; 8% of the demand scale is the
  // calibrated allowance (a single run needed 12%).
  EXPECT_NEAR(agg.mean("normalized_throughput"), sol.normalized_throughput(),
              0.08 * std::max(sol.normalized_throughput(), 0.1) +
                  agg.ci95("normalized_throughput"));
  // Capacity bound must hold for the replica MEAN with only CI slack —
  // exceeding min(c, lambda)/lambda systematically is impossible.
  EXPECT_LE(agg.mean("normalized_throughput"),
            std::min(sc.c / sc.lambda, 1.0) + 0.01 +
                agg.ci95("normalized_throughput"));

  // Saved data (Theorem 4): same scale and ordering. The census is the
  // noisiest statistic (a point-in-time count, not a time average), so
  // its allowance stays the widest.
  const double sim_saved = agg.mean("saved_original_blocks_degree") /
                           static_cast<double>(cfg.num_peers);
  const double sim_saved_ci = agg.ci95("saved_original_blocks_degree") /
                              static_cast<double>(cfg.num_peers);
  const double ode_saved = sol.saved_blocks_per_peer();
  EXPECT_NEAR(sim_saved, ode_saved,
              0.35 * std::max(ode_saved, 1.0) + sim_saved_ci);

  // The replication must have real statistical power: a CI wider than
  // the agreement band would make the assertions above vacuous.
  EXPECT_LT(agg.ci95("mean_blocks_per_peer"), 0.1 * sol.rho());
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, SimVsOdeTest,
    ::testing::Values(Scenario{20.0, 10.0, 5.0, 1},
                      Scenario{20.0, 10.0, 5.0, 10},
                      Scenario{20.0, 10.0, 2.0, 5},
                      Scenario{8.0, 4.0, 2.0, 4}));

TEST(SimVsOde, ThroughputOrderingInSIsSignificant) {
  // Both worlds must agree that throughput grows with s (Fig. 3 shape) —
  // and the simulated separation must exceed the summed CI half-widths,
  // i.e. be statistically significant, not a seed artifact.
  Scenario base{20.0, 10.0, 5.0, 1};
  auto cfg_s1 = scenario_config(base);
  cfg_s1.num_peers = 120;
  auto cfg_s10 = cfg_s1;
  cfg_s10.segment_size = 10;

  const auto agg_s1 = run_scenario(cfg_s1, 9001);
  const auto agg_s10 = run_scenario(cfg_s10, 9010);
  const double t1 = agg_s1.mean("normalized_throughput");
  const double t10 = agg_s10.mean("normalized_throughput");
  EXPECT_GT(t10 - t1, agg_s1.ci95("normalized_throughput") +
                          agg_s10.ci95("normalized_throughput"));

  const auto sol_s1 = CollectionSystem::analyze(cfg_s1);
  const auto sol_s10 = CollectionSystem::analyze(cfg_s10);
  EXPECT_GT(sol_s10.normalized_throughput(), sol_s1.normalized_throughput());
}

}  // namespace
}  // namespace icollect
