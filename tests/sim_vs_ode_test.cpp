/// Cross-validation: the event-driven simulation (run at the paper's
/// state-counter fidelity, which is exactly the process the ODEs are the
/// fluid limit of) must agree with the ODE steady state within finite-N
/// tolerances. This is the reproduction's core correctness argument:
/// two independent implementations of Sec. 2/Sec. 3 meeting in the middle.

#include <gtest/gtest.h>

#include <tuple>

#include "core/collection_system.h"
#include "ode/closed_form.h"
#include "p2p/network.h"

namespace icollect {
namespace {

struct Scenario {
  double lambda;
  double mu;
  double c;
  std::size_t s;
};

class SimVsOdeTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(SimVsOdeTest, SteadyStateAgreement) {
  const Scenario sc = GetParam();
  p2p::ProtocolConfig cfg;
  cfg.num_peers = 150;
  cfg.lambda = sc.lambda;
  cfg.mu = sc.mu;
  cfg.gamma = 1.0;
  cfg.segment_size = sc.s;
  cfg.buffer_cap = 150;
  cfg.num_servers = 4;
  cfg.set_normalized_capacity(sc.c);
  cfg.fidelity = p2p::CollectionFidelity::kStateCounter;
  cfg.seed = 1234;

  p2p::Network net{cfg};
  net.warm_up(12.0);
  net.run_until(net.now() + 30.0);

  const auto sol = CollectionSystem::analyze(cfg);

  // Storage (Theorem 1): tight agreement expected.
  EXPECT_NEAR(net.mean_blocks_per_peer(), sol.rho(), 0.05 * sol.rho());

  // Throughput (Theorem 2): finite-N sim runs a few percent below the
  // fluid limit (the N→∞ idealization); require agreement within 12%
  // of the demand scale and the right ordering vs capacity.
  EXPECT_NEAR(net.normalized_throughput(), sol.normalized_throughput(),
              0.12 * std::max(sol.normalized_throughput(), 0.1));
  EXPECT_LE(net.normalized_throughput(),
            std::min(sc.c / sc.lambda, 1.0) + 0.02);

  // Saved data (Theorem 4): same scale and ordering.
  const double sim_saved =
      net.saved_data_census().saved_original_blocks_degree /
      static_cast<double>(cfg.num_peers);
  const double ode_saved = sol.saved_blocks_per_peer();
  EXPECT_NEAR(sim_saved, ode_saved,
              0.45 * std::max(ode_saved, 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, SimVsOdeTest,
    ::testing::Values(Scenario{20.0, 10.0, 5.0, 1},
                      Scenario{20.0, 10.0, 5.0, 10},
                      Scenario{20.0, 10.0, 2.0, 5},
                      Scenario{8.0, 4.0, 2.0, 4}));

TEST(SimVsOde, ThroughputOrderingInSMatches) {
  // Both worlds must agree that throughput grows with s (Fig. 3 shape).
  p2p::ProtocolConfig cfg;
  cfg.num_peers = 120;
  cfg.lambda = 20.0;
  cfg.mu = 10.0;
  cfg.gamma = 1.0;
  cfg.buffer_cap = 150;
  cfg.num_servers = 4;
  cfg.set_normalized_capacity(5.0);
  cfg.fidelity = p2p::CollectionFidelity::kStateCounter;
  cfg.seed = 77;

  double prev_sim = -1.0;
  double prev_ode = -1.0;
  for (const std::size_t s : {1ul, 10ul}) {
    cfg.segment_size = s;
    p2p::Network net{cfg};
    net.warm_up(10.0);
    net.run_until(net.now() + 25.0);
    const auto sol = CollectionSystem::analyze(cfg);
    EXPECT_GT(net.normalized_throughput(), prev_sim);
    EXPECT_GT(sol.normalized_throughput(), prev_ode);
    prev_sim = net.normalized_throughput();
    prev_ode = sol.normalized_throughput();
  }
}

}  // namespace
}  // namespace icollect
