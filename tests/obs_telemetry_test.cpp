/// \file obs_telemetry_test.cpp
/// Telemetry bundle integration: attach a full bundle to a
/// CollectionSystem run and check that every artifact is produced — the
/// snapshot cadence, config echo, summary, trace ring, and profiler.

#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/collection_system.h"
#include "core/config_args.h"
#include "core/report.h"
#include "p2p/direct_collector.h"
#include "p2p/network_telemetry.h"

namespace {

using icollect::CollectionSystem;
using icollect::obs::Telemetry;
using icollect::obs::TelemetryOptions;

icollect::p2p::ProtocolConfig small_config() {
  icollect::p2p::ProtocolConfig cfg;
  cfg.num_peers = 30;
  cfg.lambda = 6.0;
  cfg.segment_size = 3;
  cfg.mu = 8.0;
  cfg.gamma = 1.0;
  cfg.buffer_cap = 30;
  cfg.set_normalized_capacity(3.0);
  cfg.seed = 7;
  return cfg;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::size_t count_lines(const std::string& path) {
  std::ifstream in{path};
  std::size_t n = 0;
  std::string line;
  while (std::getline(in, line)) ++n;
  return n;
}

TEST(Telemetry, FullBundleFromCollectionSystemRun) {
  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / "obs_bundle").string();
  std::filesystem::remove_all(dir);

  TelemetryOptions opts;
  opts.metrics_dir = dir;
  opts.metrics_interval = 0.5;
  opts.trace_path = dir + "/trace.jsonl";
  opts.trace_filter = "pull,decode";
  opts.profile = true;
  Telemetry telemetry{opts};

  CollectionSystem system{small_config()};
  system.attach_telemetry(telemetry);
  system.warm_up(2.0);
  system.run(6.0);
  telemetry.write_summary(to_json(system.report()));

  // Snapshot cadence: 8 time units at 0.5 spacing → ≥ 10 rows for sure.
  EXPECT_GE(telemetry.snapshotter().samples(), 10U);
  EXPECT_EQ(count_lines(dir + "/snapshots.jsonl"),
            telemetry.snapshotter().samples());
  // CSV adds a header row over the same data.
  EXPECT_EQ(count_lines(dir + "/snapshots.csv"),
            telemetry.snapshotter().samples() + 1);

  // Config echo carries the seed (reproducibility) and peer count.
  const std::string config = read_file(dir + "/config.json");
  EXPECT_NE(config.find("\"seed\":7"), std::string::npos) << config;
  EXPECT_NE(config.find("\"peers\":30"), std::string::npos) << config;

  // Snapshot rows expose the registered engine gauges.
  std::ifstream snaps{dir + "/snapshots.jsonl"};
  std::string first_row;
  ASSERT_TRUE(std::getline(snaps, first_row));
  EXPECT_NE(first_row.find("\"t\":"), std::string::npos);
  EXPECT_NE(first_row.find("\"net.segments_injected\":"), std::string::npos);
  EXPECT_NE(first_row.find("\"net.throughput\":"), std::string::npos);

  // Summary carries the report.
  const std::string summary = read_file(dir + "/summary.json");
  EXPECT_NE(summary.find("\"normalized_throughput\":"), std::string::npos);

  // Trace: the filter admits only pull/decode events.
  using icollect::proto::TraceEventKind;
  EXPECT_GT(telemetry.trace().accepted(), 0U);
  EXPECT_GT(telemetry.trace().filtered_out(), 0U);
  EXPECT_EQ(telemetry.trace().count(TraceEventKind::kGossipSent), 0U);
  EXPECT_GT(telemetry.trace().count(TraceEventKind::kServerPull), 0U);
  EXPECT_GT(count_lines(dir + "/trace.jsonl"), 0U);

  // Profiler saw the dispatch loop.
  ASSERT_NE(telemetry.profiler(), nullptr);
  const std::string profile = read_file(dir + "/profile.json");
  EXPECT_NE(profile.find("\"net.gossip\""), std::string::npos) << profile;
  bool saw_events = false;
  for (const auto* t : telemetry.profiler()->timers()) {
    if (t->stat().count > 0) saw_events = true;
  }
  EXPECT_TRUE(saw_events);

  std::filesystem::remove_all(dir);
}

TEST(Telemetry, SamplingInactiveWithoutDirOrProgress) {
  TelemetryOptions opts;
  opts.profile = true;
  Telemetry telemetry{opts};
  EXPECT_TRUE(opts.any_enabled());
  EXPECT_FALSE(telemetry.snapshots_enabled());
  EXPECT_FALSE(telemetry.sampling_active());
  EXPECT_NE(telemetry.profiler(), nullptr);
}

TEST(Telemetry, FilePrefixSharesBundleDirectory) {
  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / "obs_prefix").string();
  std::filesystem::remove_all(dir);
  TelemetryOptions opts;
  opts.metrics_dir = dir;
  opts.file_prefix = "direct_";
  Telemetry telemetry{opts};
  telemetry.registry().counter("x");
  telemetry.snapshotter().start(0.0);
  telemetry.snapshotter().sample(1.0);
  telemetry.write_summary("{}");
  EXPECT_TRUE(std::filesystem::exists(dir + "/direct_snapshots.jsonl"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/direct_summary.json"));
  std::filesystem::remove_all(dir);
}

TEST(Telemetry, DirectCollectorMetricsRegister) {
  icollect::p2p::DirectCollector dc{small_config()};
  icollect::obs::MetricsRegistry reg;
  icollect::p2p::register_direct_collector_metrics(reg, dc);
  dc.run_until(3.0);
  ASSERT_TRUE(reg.contains("direct.blocks_generated"));
  EXPECT_GT(reg.find_gauge("direct.blocks_generated")->value(), 0.0);
}

}  // namespace
