/// Differential fuzz for the extracted protocol core: the same
/// randomized input schedule is fed to identical proto::PeerCore /
/// proto::ServerCore instances through two genuinely different
/// drivers — the simulator's event queue (sim::Simulator) and the live
/// runtime's timer wheel (net::TimerWheel) — and the resulting decision
/// traces must match entry for entry.
///
/// This is the refactor's load-bearing claim made executable: the core
/// is transport- and clock-agnostic, so *which* scheduler delivers its
/// inputs cannot change any protocol decision. Times are excluded from
/// the trace (the wheel quantizes to ticks; the simulator does not);
/// instead the sim driver rounds each armed TTL delay up to the wheel's
/// tick grid, so both schedules fire every event in the same order and
/// the traces stay comparable. The tick is a power of two (2^-7 s) and
/// operations land every 32 ticks, which keeps every event time exact
/// in double arithmetic — ordering cannot drift by rounding.
///
/// Test suites here are named ProtoDifferential.* so the asan and tsan
/// presets pick them up via their test filters.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/timer_wheel.h"
#include "obs/clock.h"
#include "proto/peer_core.h"
#include "proto/server_bank.h"
#include "proto/server_core.h"
#include "sim/simulator.h"

namespace icollect::proto {
namespace {

/// The wheel's tick (2^-7 s, exactly representable) and the spacing of
/// scripted operations (32 ticks = 0.25 s).
constexpr double kTick = 0.0078125;
constexpr std::uint64_t kTicksPerOp = 32;

enum class Op : std::uint8_t {
  kInjectA,
  kInjectB,
  kGossipAtoB,
  kGossipBtoA,
  kPullA,
  kPullB,
  kChurnA,
};
constexpr std::size_t kOpKinds = 7;

/// One script = the op sequence; everything else (payload bytes, TTL
/// lifetimes, coding coefficients, segment choices) flows from the
/// cores' own seeded RNG streams, identically in both harnesses.
std::vector<Op> make_script(std::uint64_t seed, std::size_t length) {
  common::Rng rng{seed};
  std::vector<Op> ops;
  ops.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    ops.push_back(static_cast<Op>(rng.uniform_index(kOpKinds)));
  }
  return ops;
}

std::string fmt_seg(const coding::SegmentId& id) {
  return std::to_string(id.origin) + ":" + std::to_string(id.seq);
}

std::string fmt_delay(double delay) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", delay);
  return std::string{buf};
}

const char* accept_name(PeerCore::AcceptResult r) {
  switch (r) {
    case PeerCore::AcceptResult::kStored: return "stored";
    case PeerCore::AcceptResult::kShapeMismatch: return "shape";
    case PeerCore::AcceptResult::kPolluted: return "polluted";
    case PeerCore::AcceptResult::kAckedSegment: return "acked";
    case PeerCore::AcceptResult::kBufferFull: return "full";
    case PeerCore::AcceptResult::kSegmentFullRank: return "rank";
  }
  return "?";
}

const char* pull_name(ServerBank::PullResult r) {
  switch (r) {
    case ServerBank::PullResult::kInnovative: return "innovative";
    case ServerBank::PullResult::kRedundant: return "redundant";
    case ServerBank::PullResult::kAlreadyDecoded: return "stale";
    case ServerBank::PullResult::kPolluted: return "polluted";
  }
  return "?";
}

const char* ack_name(PeerCore::AckResult r) {
  switch (r) {
    case PeerCore::AckResult::kDuplicate: return "dup";
    case PeerCore::AckResult::kOwnSegment: return "own";
    case PeerCore::AckResult::kOtherSegment: return "other";
  }
  return "?";
}

/// Scheduler seam: how a harness arms a delayed callback and advances
/// logical time by one op interval. The sim driver quantizes delays to
/// the wheel's grid so both drivers fire every callback in the same
/// order (see file comment).
struct SimDriver {
  sim::Simulator sim;
  double next_op_time = 0.0;

  [[nodiscard]] double now() const { return sim.now(); }
  void arm(double delay, std::function<void()> cb) {
    auto ticks = static_cast<std::uint64_t>(delay / kTick);
    if (static_cast<double>(ticks) * kTick < delay) ++ticks;
    if (ticks == 0) ticks = 1;
    sim.schedule_after(static_cast<double>(ticks) * kTick, std::move(cb));
  }
  void advance_one_op() {
    next_op_time += static_cast<double>(kTicksPerOp) * kTick;
    sim.run_until(next_op_time);
  }
  void drain(double until) { sim.run_until(until); }
};

struct WheelDriver {
  net::TimerWheel wheel{kTick};

  [[nodiscard]] double now() const { return wheel.now(); }
  void arm(double delay, std::function<void()> cb) {
    wheel.schedule_after(delay, std::move(cb));
  }
  void advance_one_op() { wheel.advance(kTicksPerOp); }
  void drain(double until) { wheel.advance_to(until); }
};

struct FuzzConfig {
  PeerCore::Params params;
  std::uint64_t seed = 0;
  std::size_t script_len = 0;
};

/// Run the scripted schedule through one driver and return the decision
/// trace. Two peers (A injects/gossips/answers pulls with B; A also
/// churns) and one server (pulls alternate between them, decode ACKs
/// fan out to both).
template <typename Driver>
std::vector<std::string> run_schedule(const FuzzConfig& cfg) {
  Driver driver;
  std::vector<std::string> trace;

  common::Rng rng_a{cfg.seed + 0x10};
  common::Rng rng_b{cfg.seed + 0x20};
  PeerCore peer_a{cfg.params, /*origin=*/1, rng_a};
  PeerCore peer_b{cfg.params, /*origin=*/2, rng_b};
  const obs::CallbackClock clock{[&driver] { return driver.now(); }};
  ServerCore server{/*keep_payloads=*/false, clock};
  coding::OriginId next_origin = 100;

  PeerCore* peers[2] = {&peer_a, &peer_b};
  const char* names[2] = {"A", "B"};
  for (int i = 0; i < 2; ++i) {
    PeerCore* core = peers[i];
    const std::string name = names[i];
    core->set_arm_ttl([&driver, &trace, core, name](coding::BlockHandle h,
                                                    double delay) {
      trace.push_back("arm " + name + " h=" + std::to_string(h) +
                      " d=" + fmt_delay(delay));
      driver.arm(delay, [&trace, core, name, h] {
        const auto seg = core->on_ttl_expired(h);
        if (!seg) {
          trace.push_back("ttl-stale " + name);
          return;
        }
        trace.push_back("ttl " + name + " " + fmt_seg(*seg));
        core->reseed_own(*seg);
      });
    });
  }

  server.set_decode_callback([&](const ServerBank::DecodeEvent& ev) {
    trace.push_back("decode " + fmt_seg(ev.id));
    trace.push_back(std::string{"ack A="} +
                    ack_name(peer_a.on_ack(ev.id)) +
                    " B=" + ack_name(peer_b.on_ack(ev.id)));
  });

  const auto inject = [&](int idx) {
    PeerCore& core = *peers[idx];
    if (!core.can_inject()) {
      trace.push_back(std::string{"inject-blocked "} + names[idx]);
      return;
    }
    const auto injected = core.inject();
    std::string entry =
        std::string{"inject "} + names[idx] + " " + fmt_seg(injected.id);
    for (const std::uint32_t crc : injected.crcs) {
      entry += " " + std::to_string(crc);
    }
    trace.push_back(std::move(entry));
  };

  const auto gossip = [&](int from, int to) {
    PeerCore& src = *peers[from];
    PeerCore& dst = *peers[to];
    if (!src.has_blocks()) {
      trace.push_back(std::string{"gossip-idle "} + names[from]);
      return;
    }
    const coding::SegmentId seg = src.choose_gossip_segment();
    const auto result = dst.accept(src.recode(seg));
    trace.push_back(std::string{"gossip "} + names[from] + ">" +
                    names[to] + " " + fmt_seg(seg) + " " +
                    accept_name(result));
  };

  const auto pull = [&](int idx) {
    PeerCore& core = *peers[idx];
    coding::CodedBlock block;
    if (!core.answer_pull(block)) {
      trace.push_back(std::string{"pull-empty "} + names[idx]);
      return;
    }
    const auto result = server.on_pull_block(block);
    trace.push_back(std::string{"pull "} + names[idx] + " " +
                    fmt_seg(block.segment) + " " + pull_name(result) +
                    " fwd=" +
                    (ServerCore::should_forward(result) ? "1" : "0"));
  };

  const std::vector<Op> script = make_script(cfg.seed, cfg.script_len);
  for (const Op op : script) {
    driver.advance_one_op();
    switch (op) {
      case Op::kInjectA: inject(0); break;
      case Op::kInjectB: inject(1); break;
      case Op::kGossipAtoB: gossip(0, 1); break;
      case Op::kGossipBtoA: gossip(1, 0); break;
      case Op::kPullA: pull(0); break;
      case Op::kPullB: pull(1); break;
      case Op::kChurnA: {
        const std::size_t lost = peer_a.clear_all();
        peer_a.rebirth(next_origin++);
        trace.push_back("churn A n=" + std::to_string(lost));
        break;
      }
    }
  }
  // Let every armed TTL fire (or go stale) so the tail of the trace is
  // compared too. Exp(1) lifetimes: 64 op-intervals ≈ 16 s is far past
  // any armed expiry for the script lengths used here.
  driver.drain(static_cast<double>(cfg.script_len + 64) *
               static_cast<double>(kTicksPerOp) * kTick);
  return trace;
}

void expect_identical_traces(const FuzzConfig& cfg) {
  const auto sim_trace = run_schedule<SimDriver>(cfg);
  const auto wheel_trace = run_schedule<WheelDriver>(cfg);
  ASSERT_FALSE(sim_trace.empty());
  ASSERT_EQ(sim_trace.size(), wheel_trace.size())
      << "seed=" << cfg.seed;
  for (std::size_t i = 0; i < sim_trace.size(); ++i) {
    ASSERT_EQ(sim_trace[i], wheel_trace[i])
        << "seed=" << cfg.seed << " entry=" << i;
  }
  // Sanity: the schedule exercised real decisions, not just idle ops.
  bool saw_store = false;
  for (const auto& e : sim_trace) {
    if (e.rfind("arm", 0) == 0) saw_store = true;
  }
  EXPECT_TRUE(saw_store) << "seed=" << cfg.seed;
}

FuzzConfig base_config(std::uint64_t seed) {
  FuzzConfig cfg;
  cfg.params.segment_size = 3;
  cfg.params.buffer_cap = 12;
  cfg.params.gamma = 1.0;
  cfg.seed = seed;
  cfg.script_len = 160;
  return cfg;
}

TEST(ProtoDifferential, PlainConfigTracesMatch) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    expect_identical_traces(base_config(seed));
  }
}

TEST(ProtoDifferential, PayloadRetainDropOnAckTracesMatch) {
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    FuzzConfig cfg = base_config(seed);
    cfg.params.payload_bytes = 8;
    cfg.params.record_own_crcs = true;
    cfg.params.drop_on_ack = true;
    cfg.params.retain_own_until_acked = true;
    expect_identical_traces(cfg);
  }
}

TEST(ProtoDifferential, TinyBufferBackpressureTracesMatch) {
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    FuzzConfig cfg = base_config(seed);
    cfg.params.buffer_cap = 4;  // one segment + one relayed block
    cfg.script_len = 200;
    expect_identical_traces(cfg);
  }
}

}  // namespace
}  // namespace icollect::proto
