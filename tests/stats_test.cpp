/// Tests for the measurement-plane primitives: Summary, Histogram,
/// TimeWeighted, RateEstimator, Trajectory.

#include <gtest/gtest.h>

#include <cmath>

#include "stats/histogram.h"
#include "stats/summary.h"
#include "stats/time_series.h"

namespace icollect::stats {
namespace {

TEST(Summary, EmptyIsZeroed) {
  const Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: Σ(x−5)² = 32; 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, SingleSampleVarianceZero) {
  Summary s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, MergeEqualsConcatenation) {
  Summary whole;
  Summary a;
  Summary b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10;
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Summary, MergeWithEmptySides) {
  Summary a;
  Summary b;
  b.add(1.0);
  b.add(3.0);
  a.merge(b);  // empty.merge(filled)
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  Summary c;
  a.merge(c);  // filled.merge(empty)
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Summary, ResetClears) {
  Summary s;
  s.add(5.0);
  s.reset();
  EXPECT_TRUE(s.empty());
}

TEST(Histogram, BinningAndEdges) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.0);   // first bin (inclusive low edge)
  h.add(9.99);  // last bin
  h.add(5.0);   // bin 5
  h.add(-1.0);  // underflow
  h.add(10.0);  // overflow (hi is exclusive)
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.bin(5), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, WeightsAndFractions) {
  Histogram h{0.0, 4.0, 4};
  h.add(0.5, 3);
  h.add(2.5, 1);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(h.fraction(2), 0.25);
}

TEST(Histogram, QuantilesRoughlyCorrect) {
  Histogram h{0.0, 100.0, 100};
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
  EXPECT_THROW((void)h.quantile(1.5), icollect::ContractViolation);
}

TEST(Histogram, InvalidConstructionViolatesContract) {
  EXPECT_THROW((Histogram{1.0, 1.0, 4}), icollect::ContractViolation);
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), icollect::ContractViolation);
}

TEST(TimeWeighted, ConstantSignal) {
  TimeWeighted tw{0.0, 5.0};
  EXPECT_DOUBLE_EQ(tw.mean(10.0), 5.0);
}

TEST(TimeWeighted, PiecewiseHandComputed) {
  TimeWeighted tw{0.0, 0.0};
  tw.update(2.0, 10.0);  // 0 for [0,2), 10 for [2,...
  tw.update(6.0, 4.0);   // 10 for [2,6), 4 from 6
  // mean over [0,8] = (0*2 + 10*4 + 4*2)/8 = 48/8 = 6
  EXPECT_DOUBLE_EQ(tw.mean(8.0), 6.0);
  EXPECT_DOUBLE_EQ(tw.value(), 4.0);
}

TEST(TimeWeighted, AddDeltas) {
  TimeWeighted tw{0.0, 1.0};
  tw.add(1.0, 2.0);   // value 3 from t=1
  tw.add(3.0, -3.0);  // value 0 from t=3
  // mean over [0,4] = (1*1 + 3*2 + 0*1)/4 = 7/4
  EXPECT_DOUBLE_EQ(tw.mean(4.0), 1.75);
}

TEST(TimeWeighted, ResetWindowKeepsValue) {
  TimeWeighted tw{0.0, 0.0};
  tw.update(5.0, 8.0);
  tw.reset_window(10.0);
  EXPECT_DOUBLE_EQ(tw.value(), 8.0);
  EXPECT_DOUBLE_EQ(tw.mean(20.0), 8.0);  // only post-reset interval counts
}

TEST(TimeWeighted, NonMonotoneTimeViolatesContract) {
  TimeWeighted tw{5.0, 0.0};
  EXPECT_THROW(tw.update(4.0, 1.0), icollect::ContractViolation);
}

TEST(RateEstimator, BasicRate) {
  RateEstimator r{0.0};
  r.record(10);
  EXPECT_DOUBLE_EQ(r.rate(5.0), 2.0);
  EXPECT_EQ(r.count(), 10u);
}

TEST(RateEstimator, ZeroSpanIsZeroRate) {
  RateEstimator r{3.0};
  r.record();
  EXPECT_DOUBLE_EQ(r.rate(3.0), 0.0);
}

TEST(RateEstimator, ResetWindowClearsCount) {
  RateEstimator r{0.0};
  r.record(100);
  r.reset_window(10.0);
  EXPECT_EQ(r.count(), 0u);
  r.record(5);
  EXPECT_DOUBLE_EQ(r.rate(15.0), 1.0);
  EXPECT_DOUBLE_EQ(r.window_start(), 10.0);
}

TEST(Trajectory, CollectsPoints) {
  Trajectory t;
  EXPECT_TRUE(t.empty());
  t.sample(1.0, 2.0);
  t.sample(2.0, 3.0);
  ASSERT_EQ(t.points().size(), 2u);
  EXPECT_DOUBLE_EQ(t.points()[1].second, 3.0);
  t.clear();
  EXPECT_TRUE(t.empty());
}

}  // namespace
}  // namespace icollect::stats
