/// Randomized property sweep: across a grid of seeds and randomly drawn
/// protocol configurations, the engine's structural invariants and
/// conservation laws must hold. This is the failure-injection net that
/// catches interactions no hand-written scenario covers (tiny buffers,
/// extreme rates, sparse graphs, churn + counter fidelity, ...).

#include <gtest/gtest.h>

#include <unordered_map>

#include "p2p/network.h"

namespace icollect::p2p {
namespace {

ProtocolConfig random_config(sim::Rng& rng) {
  ProtocolConfig cfg;
  cfg.num_peers = 20 + rng.uniform_index(80);
  cfg.lambda = rng.uniform(0.5, 25.0);
  cfg.segment_size = 1 + rng.uniform_index(20);
  cfg.mu = rng.uniform(0.0, 15.0);
  cfg.gamma = rng.uniform(0.3, 3.0);
  cfg.buffer_cap =
      cfg.segment_size + 1 + rng.uniform_index(100);  // >= s, maybe tiny
  cfg.num_servers = 1 + rng.uniform_index(6);
  cfg.set_normalized_capacity(rng.uniform(0.0, 12.0));
  cfg.fidelity = rng.bernoulli(0.5) ? CollectionFidelity::kStateCounter
                                    : CollectionFidelity::kRealCoding;
  const int topo = static_cast<int>(rng.uniform_index(3));
  cfg.topology = topo == 0   ? TopologyKind::kComplete
                 : topo == 1 ? TopologyKind::kErdosRenyi
                             : TopologyKind::kRandomRegular;
  if (cfg.topology != TopologyKind::kComplete) {
    cfg.mean_degree = 4 + rng.uniform_index(8);
    if (cfg.topology == TopologyKind::kRandomRegular &&
        (cfg.mean_degree * cfg.num_peers) % 2 != 0) {
      ++cfg.mean_degree;
    }
  }
  if (rng.bernoulli(0.5)) {
    cfg.churn.enabled = true;
    cfg.churn.mean_lifetime = rng.uniform(0.5, 8.0);
  }
  return cfg;
}

class NetworkPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkPropertyTest, InvariantsHoldOnRandomConfigs) {
  sim::Rng meta{GetParam()};
  ProtocolConfig cfg = random_config(meta);
  cfg.seed = GetParam() * 7919 + 1;
  SCOPED_TRACE("N=" + std::to_string(cfg.num_peers) +
               " lambda=" + std::to_string(cfg.lambda) +
               " s=" + std::to_string(cfg.segment_size) +
               " mu=" + std::to_string(cfg.mu) +
               " gamma=" + std::to_string(cfg.gamma) +
               " B=" + std::to_string(cfg.buffer_cap) +
               " c=" + std::to_string(cfg.normalized_capacity()) +
               " topo=" + to_string(cfg.topology) + " fidelity=" +
               to_string(cfg.fidelity) +
               " churn=" + std::to_string(cfg.churn.enabled));

  Network net{cfg};
  net.run_until(8.0);

  // 1. Buffer caps respected; registry degrees match ground truth.
  std::unordered_map<coding::SegmentId, std::size_t> degrees;
  std::size_t blocks_in_network = 0;
  for (std::size_t slot = 0; slot < cfg.num_peers; ++slot) {
    const Peer& p = net.peer(slot);
    ASSERT_LE(p.buffer().size(), cfg.buffer_cap);
    blocks_in_network += p.buffer().size();
    for (const auto& seg : p.buffer().segments()) {
      const auto* sb = p.buffer().find(seg);
      ASSERT_NE(sb, nullptr);
      ASSERT_FALSE(sb->empty());
      degrees[seg] += sb->block_count();
    }
  }
  std::size_t live = 0;
  for (const auto& [id, info] : net.segment_registry()) {
    if (info.degree > 0) {
      ++live;
      const auto it = degrees.find(id);
      ASSERT_NE(it, degrees.end());
      ASSERT_EQ(it->second, info.degree);
    }
    ASSERT_LE(info.collected, info.segment_size);
    ASSERT_FALSE(info.decoded && info.lost);
  }
  ASSERT_EQ(live, degrees.size());

  // 2. Block conservation.
  const auto& m = net.metrics();
  ASSERT_EQ(m.blocks_injected + m.gossip_sent,
            m.ttl_expirations + m.blocks_lost_to_churn + blocks_in_network);

  // 3. Server accounting.
  const auto& srv = net.servers();
  ASSERT_EQ(srv.pulls(), srv.innovative_pulls() + srv.redundant_pulls());
  ASSERT_LE(srv.segments_decoded(), m.segments_injected);
  ASSERT_EQ(m.payload_crc_failures, 0u);

  // 4. Derived rates stay in physical ranges.
  ASSERT_GE(net.normalized_throughput(), 0.0);
  ASSERT_LE(net.normalized_throughput(), 1.0 + 1e-9);
  ASSERT_GE(net.mean_blocks_per_peer(), 0.0);
  ASSERT_LE(net.empty_peer_fraction(), 1.0 + 1e-9);

  // 5. Census coherence.
  const auto census = net.saved_data_census();
  ASSERT_LE(census.decodable_by_rank, census.decodable_by_degree);
  ASSERT_LE(census.decodable_by_degree, census.undecoded_live_segments);
  ASSERT_EQ(census.live_segments, live);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace icollect::p2p
