/// End-to-end RLNC codec tests: source encoding, progressive decoding,
/// innovation detection, and recoding chains. Parameterized over segment
/// size, since the paper's central knob is s.

#include <gtest/gtest.h>

#include <algorithm>

#include <vector>

#include "coding/decoder.h"
#include "coding/encoder.h"
#include "coding/segment_buffer.h"
#include "sim/random.h"

namespace icollect::coding {
namespace {

std::vector<std::vector<std::uint8_t>> random_originals(std::size_t s,
                                                        std::size_t bytes,
                                                        sim::Rng& rng) {
  std::vector<std::vector<std::uint8_t>> blocks(s);
  for (auto& b : blocks) {
    b.resize(bytes);
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.gf_element());
  }
  return blocks;
}

class CodecRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CodecRoundTripTest, RandomCodedBlocksDecode) {
  const std::size_t s = GetParam();
  sim::Rng rng{1000 + s};
  const SegmentId id{3, 7};
  const auto originals = random_originals(s, 32, rng);
  const SegmentEncoder enc{id, originals};
  Decoder dec{id, s, 32};

  std::size_t offered = 0;
  while (!dec.complete()) {
    dec.add(enc.encode(rng));
    ++offered;
    ASSERT_LE(offered, s + 20) << "decoder failed to complete";
  }
  // Over GF(256), random draws are innovative w.h.p.: expect few extras.
  EXPECT_LE(offered, s + 5);
  for (std::size_t k = 0; k < s; ++k) {
    const auto got = dec.original(k);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), originals[k].begin(),
                           originals[k].end()))
        << "block " << k;
  }
}

TEST_P(CodecRoundTripTest, SystematicBlocksDecodeExactlyAtRankS) {
  const std::size_t s = GetParam();
  sim::Rng rng{2000 + s};
  const SegmentId id{1, 1};
  const auto originals = random_originals(s, 16, rng);
  const SegmentEncoder enc{id, originals};
  Decoder dec{id, s, 16};
  for (std::size_t k = 0; k < s; ++k) {
    EXPECT_FALSE(dec.complete());
    EXPECT_TRUE(dec.add(enc.systematic_block(k)));
    EXPECT_EQ(dec.rank(), k + 1);
  }
  EXPECT_TRUE(dec.complete());
  EXPECT_EQ(dec.originals(), originals);
}

TEST_P(CodecRoundTripTest, RecodedChainStillDecodes) {
  // source -> buffer A -> recode -> buffer B -> recode -> server: the
  // paper's "coding operation is not limited to the source".
  const std::size_t s = GetParam();
  sim::Rng rng{3000 + s};
  const SegmentId id{9, 4};
  const auto originals = random_originals(s, 24, rng);
  const SegmentEncoder enc{id, originals};

  SegmentBuffer a{id, s};
  for (std::size_t k = 0; k < 2 * s; ++k) {
    a.add(k + 1, enc.encode(rng));
  }
  SegmentBuffer b{id, s};
  for (std::size_t k = 0; k < 2 * s; ++k) {
    b.add(1000 + k, a.recode(rng));
  }
  Decoder dec{id, s, 24};
  std::size_t offered = 0;
  while (!dec.complete() && offered < 6 * s + 30) {
    dec.add(b.recode(rng));
    ++offered;
  }
  ASSERT_TRUE(dec.complete());
  EXPECT_EQ(dec.originals(), originals);
}

INSTANTIATE_TEST_SUITE_P(SegmentSizes, CodecRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32, 64));

TEST(SegmentEncoderTest, RejectsEmptyAndRagged) {
  EXPECT_THROW((SegmentEncoder{SegmentId{}, {}}), ContractViolation);
  std::vector<std::vector<std::uint8_t>> ragged{{1, 2}, {3}};
  EXPECT_THROW((SegmentEncoder{SegmentId{}, ragged}), ContractViolation);
}

TEST(SegmentEncoderTest, EncodedBlockNeverDegenerate) {
  sim::Rng rng{5};
  const SegmentEncoder enc{SegmentId{2, 2}, random_originals(4, 8, rng)};
  for (int t = 0; t < 200; ++t) {
    EXPECT_FALSE(enc.encode(rng).is_degenerate());
  }
}

TEST(SegmentEncoderTest, EncodedPayloadIsTheStatedCombination) {
  sim::Rng rng{6};
  const auto originals = random_originals(3, 10, rng);
  const SegmentEncoder enc{SegmentId{1, 0}, originals};
  const CodedBlock b = enc.encode(rng);
  std::vector<std::uint8_t> expect(10, 0);
  for (std::size_t j = 0; j < 3; ++j) {
    gf::add_scaled(expect, originals[j], b.coefficients[j]);
  }
  EXPECT_EQ(b.payload, expect);
}

TEST(DecoderTest, DuplicateBlockIsRedundant) {
  sim::Rng rng{7};
  const auto originals = random_originals(4, 8, rng);
  const SegmentEncoder enc{SegmentId{1, 0}, originals};
  Decoder dec{SegmentId{1, 0}, 4, 8};
  const CodedBlock b = enc.encode(rng);
  EXPECT_TRUE(dec.add(b));
  EXPECT_FALSE(dec.add(b));
  EXPECT_EQ(dec.redundant_count(), 1u);
  EXPECT_EQ(dec.rank(), 1u);
}

TEST(DecoderTest, LinearCombinationOfKnownRowsIsRedundant) {
  sim::Rng rng{8};
  const auto originals = random_originals(5, 8, rng);
  const SegmentEncoder enc{SegmentId{1, 0}, originals};
  Decoder dec{SegmentId{1, 0}, 5, 8};
  const CodedBlock b1 = enc.encode(rng);
  const CodedBlock b2 = enc.encode(rng);
  ASSERT_TRUE(dec.add(b1));
  ASSERT_TRUE(dec.add(b2));
  // 3*b1 + 5*b2 is in the decoder's span.
  CodedBlock mix;
  mix.segment = SegmentId{1, 0};
  mix.coefficients.assign(5, 0);
  mix.payload.assign(8, 0);
  gf::add_scaled(mix.coefficients, b1.coefficients, 3);
  gf::add_scaled(mix.coefficients, b2.coefficients, 5);
  gf::add_scaled(mix.payload, b1.payload, 3);
  gf::add_scaled(mix.payload, b2.payload, 5);
  EXPECT_FALSE(dec.is_innovative(mix));
  EXPECT_FALSE(dec.add(mix));
}

TEST(DecoderTest, IsInnovativeDoesNotMutate) {
  sim::Rng rng{9};
  const auto originals = random_originals(4, 4, rng);
  const SegmentEncoder enc{SegmentId{1, 0}, originals};
  Decoder dec{SegmentId{1, 0}, 4, 4};
  const CodedBlock b = enc.encode(rng);
  EXPECT_TRUE(dec.is_innovative(b));
  EXPECT_EQ(dec.rank(), 0u);
  EXPECT_TRUE(dec.is_innovative(b));  // still, since nothing was added
}

TEST(DecoderTest, MismatchedSegmentViolatesContract) {
  Decoder dec{SegmentId{1, 0}, 4, 0};
  CodedBlock b;
  b.segment = SegmentId{2, 0};
  b.coefficients.assign(4, 1);
  EXPECT_THROW((void)dec.add(b), ContractViolation);
}

TEST(DecoderTest, WrongCoefficientLengthViolatesContract) {
  Decoder dec{SegmentId{1, 0}, 4, 0};
  CodedBlock b;
  b.segment = SegmentId{1, 0};
  b.coefficients.assign(3, 1);
  EXPECT_THROW((void)dec.add(b), ContractViolation);
}

TEST(DecoderTest, OriginalBeforeCompleteViolatesContract) {
  Decoder dec{SegmentId{1, 0}, 2, 4};
  EXPECT_THROW((void)dec.original(0), ContractViolation);
}

TEST(DecoderTest, AfterCompleteEverythingIsRedundant) {
  sim::Rng rng{10};
  const auto originals = random_originals(3, 4, rng);
  const SegmentEncoder enc{SegmentId{1, 0}, originals};
  Decoder dec{SegmentId{1, 0}, 3, 4};
  while (!dec.complete()) dec.add(enc.encode(rng));
  const auto redundant_before = dec.redundant_count();
  EXPECT_FALSE(dec.add(enc.encode(rng)));
  EXPECT_EQ(dec.redundant_count(), redundant_before + 1);
  EXPECT_FALSE(dec.is_innovative(enc.encode(rng)));
}

TEST(DecoderTest, ZeroPayloadSizeTracksCoefficientsOnly) {
  sim::Rng rng{11};
  Decoder dec{SegmentId{4, 4}, 3, 0};
  CodedBlock b;
  b.segment = SegmentId{4, 4};
  b.coefficients = {1, 2, 3};
  EXPECT_TRUE(dec.add(b));
  b.coefficients = {0, 1, 1};
  EXPECT_TRUE(dec.add(b));
  b.coefficients = {1, 3, 2};  // = row1 + row2
  EXPECT_FALSE(dec.add(b));
}

}  // namespace
}  // namespace icollect::coding
