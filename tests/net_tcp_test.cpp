/// Tests for the nonblocking poll-based TCP transport against real
/// sockets on the loopback interface: ephemeral listen, connect and
/// bidirectional byte flow, send-queue backpressure, connect failure
/// after the retry budget, and clean close propagation. Everything runs
/// single-threaded through poll_once(), with generous wall-clock
/// deadlines so loaded CI machines don't flake.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <span>
#include <string>
#include <sys/time.h>
#include <unordered_map>
#include <vector>

#include "net/tcp.h"
#include "net/transport.h"
#include "obs/metrics_registry.h"

namespace icollect::net {
namespace {

class RecordingHandler final : public TransportHandler {
 public:
  void on_peer_up(NodeId peer) override { ups.push_back(peer); }
  void on_peer_down(NodeId peer) override { downs.push_back(peer); }
  void on_bytes(NodeId peer, std::span<const std::uint8_t> bytes) override {
    auto& stream = received[peer];
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }

  std::vector<NodeId> ups;
  std::vector<NodeId> downs;
  std::unordered_map<NodeId, std::vector<std::uint8_t>> received;
};

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

/// Pump both transports until `done` or the wall-clock deadline.
template <typename Pred>
bool pump(TcpTransport& a, TcpTransport& b, Pred done,
          double timeout = 10.0) {
  const double t0 = a.now();
  while (a.now() - t0 < timeout) {
    a.poll_once(0.01);
    b.poll_once(0.01);
    if (done()) return true;
  }
  return done();
}

TEST(Tcp, EphemeralListenReturnsRealPort) {
  TcpTransport t;
  const std::uint16_t port = t.listen("127.0.0.1", 0);
  EXPECT_GT(port, 0);
}

TEST(Tcp, ConnectExchangeClose) {
  TcpTransport server;
  TcpTransport client;
  RecordingHandler hs;
  RecordingHandler hc;
  server.set_handler(&hs);
  client.set_handler(&hc);

  const std::uint16_t port = server.listen("127.0.0.1", 0);
  const NodeId conn = client.connect("127.0.0.1", port);
  ASSERT_TRUE(pump(server, client, [&] {
    return !hs.ups.empty() && !hc.ups.empty();
  })) << "connection did not establish";

  // Client → server.
  ASSERT_TRUE(client.send(conn, bytes_of("ping")));
  ASSERT_TRUE(pump(server, client, [&] {
    return hs.received[hs.ups[0]].size() >= 4;
  }));
  EXPECT_EQ(hs.received[hs.ups[0]], bytes_of("ping"));

  // Server → client over the accepted connection.
  ASSERT_TRUE(server.send(hs.ups[0], bytes_of("pong!")));
  ASSERT_TRUE(pump(server, client, [&] {
    return hc.received[conn].size() >= 5;
  }));
  EXPECT_EQ(hc.received[conn], bytes_of("pong!"));
  EXPECT_GE(client.bytes_sent(), 4U);
  EXPECT_GE(server.bytes_received(), 4U);

  // Closing on one side surfaces on_peer_down on the other.
  client.close_peer(conn);
  ASSERT_TRUE(pump(server, client, [&] { return !hs.downs.empty(); }));
  EXPECT_EQ(hs.downs[0], hs.ups[0]);
}

TEST(Tcp, LargeTransferSurvivesChunking) {
  // 1 MiB through real kernel buffers arrives intact and in order,
  // regardless of how recv() slices it.
  TcpTransport server;
  TcpTransport client;
  RecordingHandler hs;
  RecordingHandler hc;
  server.set_handler(&hs);
  client.set_handler(&hc);
  const std::uint16_t port = server.listen("127.0.0.1", 0);
  const NodeId conn = client.connect("127.0.0.1", port);
  ASSERT_TRUE(pump(server, client, [&] {
    return !hs.ups.empty() && !hc.ups.empty();
  }));

  std::vector<std::uint8_t> blob(1U << 20U);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::uint8_t>(i * 2654435761U >> 24U);
  }
  ASSERT_TRUE(client.send(conn, blob));
  ASSERT_TRUE(pump(server, client, [&] {
    return hs.received[hs.ups[0]].size() >= blob.size();
  }));
  EXPECT_EQ(hs.received[hs.ups[0]], blob);
}

TEST(Tcp, BackpressureRefusesOverCap) {
  TcpTransport::Options opts;
  opts.send_queue_cap_bytes = 64;
  TcpTransport client{opts};
  TcpTransport server;
  RecordingHandler hs;
  RecordingHandler hc;
  server.set_handler(&hs);
  client.set_handler(&hc);
  const std::uint16_t port = server.listen("127.0.0.1", 0);
  const NodeId conn = client.connect("127.0.0.1", port);

  // A send larger than the cap is refused outright — nothing is queued,
  // whatever the connection state.
  EXPECT_FALSE(client.send(conn, std::vector<std::uint8_t>(65, 1)));
  EXPECT_EQ(client.backpressure_refusals(), 1U);

  // Within the cap it queues, flushes once established, and arrives.
  EXPECT_TRUE(client.send(conn, std::vector<std::uint8_t>(60, 2)));
  ASSERT_TRUE(pump(server, client, [&] {
    return !hs.ups.empty() && hs.received[hs.ups[0]].size() >= 60;
  }));
  EXPECT_TRUE(client.send(conn, std::vector<std::uint8_t>(60, 3)));
}

TEST(Tcp, ConnectToDeadPortFailsAfterRetries) {
  // Bind-then-close to get a port that is almost surely not listening.
  std::uint16_t dead_port = 0;
  {
    TcpTransport probe;
    dead_port = probe.listen("127.0.0.1", 0);
  }
  TcpTransport::Options opts;
  opts.connect_timeout = 0.5;
  opts.connect_retries = 1;
  opts.retry_backoff = 0.05;
  TcpTransport client{opts};
  RecordingHandler hc;
  client.set_handler(&hc);
  const NodeId conn = client.connect("127.0.0.1", dead_port);
  const double t0 = client.now();
  while (client.now() - t0 < 10.0 && hc.downs.empty()) {
    client.poll_once(0.01);
  }
  ASSERT_EQ(hc.downs.size(), 1U);
  EXPECT_EQ(hc.downs[0], conn);
  EXPECT_TRUE(hc.ups.empty());
  EXPECT_EQ(client.connects_failed(), 1U);
  // The dead connection refuses sends.
  EXPECT_FALSE(client.send(conn, bytes_of("x")));
}

TEST(Tcp, SendToUnknownConnRefused) {
  TcpTransport t;
  EXPECT_FALSE(t.send(12345, bytes_of("x")));
}

TEST(Tcp, InstrumentationCountersTrackLifecycle) {
  TcpTransport server;
  TcpTransport client;
  RecordingHandler hs;
  RecordingHandler hc;
  server.set_handler(&hs);
  client.set_handler(&hc);

  obs::MetricsRegistry reg;
  client.attach_metrics(reg, "cli.");

  const std::uint16_t port = server.listen("127.0.0.1", 0);
  const NodeId conn = client.connect("127.0.0.1", port);
  ASSERT_TRUE(pump(server, client, [&] {
    return !hs.ups.empty() && !hc.ups.empty();
  }));
  EXPECT_EQ(client.connects_ok(), 1U);
  EXPECT_EQ(client.accepts(), 0U);
  EXPECT_EQ(server.accepts(), 1U);

  ASSERT_TRUE(client.send(conn, bytes_of("ping")));
  ASSERT_TRUE(pump(server, client, [&] {
    return hs.received[hs.ups[0]].size() >= 4;
  }));
  EXPECT_EQ(client.sends(), 1U);
  EXPECT_GE(client.bytes_sent(), 4U);
  EXPECT_EQ(client.send_queue_bytes(), 0U);  // fully drained
  EXPECT_GE(client.send_queue_high_watermark(), 4U);

  // The registry gauges read the same live counters.
  EXPECT_DOUBLE_EQ(reg.find_gauge("cli.sends")->value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.find_gauge("cli.connects_ok")->value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.find_gauge("cli.outq_bytes")->value(), 0.0);
  EXPECT_GE(reg.find_gauge("cli.bytes_out")->value(), 4.0);

  client.close_peer(conn);
  EXPECT_EQ(client.closes(), 1U);
  EXPECT_DOUBLE_EQ(reg.find_gauge("cli.closes")->value(), 1.0);
}

TEST(Tcp, ShortSendsCompactAndDeliver) {
  // A deliberately tiny socket send buffer forces send() to drain in
  // many short writes: every EAGAIN is a partial drain, the consumed
  // outq prefix must be compacted (not grown without bound), and the
  // stream must still arrive byte-exact.
  TcpTransport::Options opts;
  opts.so_sndbuf = 4096;  // kernel clamps to its minimum, still tiny
  TcpTransport client{opts};
  TcpTransport server;
  RecordingHandler hs;
  RecordingHandler hc;
  server.set_handler(&hs);
  client.set_handler(&hc);
  const std::uint16_t port = server.listen("127.0.0.1", 0);
  const NodeId conn = client.connect("127.0.0.1", port);
  ASSERT_TRUE(pump(server, client, [&] {
    return !hs.ups.empty() && !hc.ups.empty();
  }));

  std::vector<std::uint8_t> blob(512U * 1024U);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::uint8_t>(i * 40503U >> 8U);
  }
  ASSERT_TRUE(client.send(conn, blob));
  ASSERT_TRUE(pump(server, client, [&] {
    return hs.received[hs.ups[0]].size() >= blob.size();
  }));
  EXPECT_EQ(hs.received[hs.ups[0]], blob);
  EXPECT_GT(client.partial_drains(), 0U);
  EXPECT_EQ(client.send_queue_bytes(), 0U);  // outq fully drained
}

TEST(Tcp, TransferSurvivesSignalStorm) {
  // Pepper the process with SIGALRM (no SA_RESTART, so poll/recv/send
  // return EINTR) for the whole transfer: the transport must retry
  // interrupted syscalls, never drop bytes or surface a spurious close.
  struct sigaction sa{};
  sa.sa_handler = [](int) {};
  sa.sa_flags = 0;  // deliberately NOT SA_RESTART
  sigemptyset(&sa.sa_mask);
  struct sigaction old_sa{};
  ASSERT_EQ(sigaction(SIGALRM, &sa, &old_sa), 0);
  itimerval storm{};
  storm.it_interval.tv_usec = 2000;  // every 2ms
  storm.it_value.tv_usec = 2000;
  itimerval old_timer{};
  ASSERT_EQ(setitimer(ITIMER_REAL, &storm, &old_timer), 0);

  {
    TcpTransport server;
    TcpTransport client;
    RecordingHandler hs;
    RecordingHandler hc;
    server.set_handler(&hs);
    client.set_handler(&hc);
    const std::uint16_t port = server.listen("127.0.0.1", 0);
    const NodeId conn = client.connect("127.0.0.1", port);
    ASSERT_TRUE(pump(server, client, [&] {
      return !hs.ups.empty() && !hc.ups.empty();
    }));
    std::vector<std::uint8_t> blob(1U << 20U);
    for (std::size_t i = 0; i < blob.size(); ++i) {
      blob[i] = static_cast<std::uint8_t>(i * 2246822519U >> 16U);
    }
    ASSERT_TRUE(client.send(conn, blob));
    ASSERT_TRUE(pump(server, client, [&] {
      return hs.received[hs.ups[0]].size() >= blob.size();
    }));
    EXPECT_EQ(hs.received[hs.ups[0]], blob);
    EXPECT_TRUE(hs.downs.empty());
    EXPECT_TRUE(hc.downs.empty());
  }

  ASSERT_EQ(setitimer(ITIMER_REAL, &old_timer, nullptr), 0);
  ASSERT_EQ(sigaction(SIGALRM, &old_sa, nullptr), 0);
}

TEST(Tcp, SlowReaderHitsQueueCapThenIdleReapStaysReconnectSafe) {
  // A scripted slow-reader peer: the server transport accepts the TCP
  // handshake in the kernel but is never polled, so it never reads.
  // The writer must (1) absorb backpressure into its bounded send
  // queue, (2) refuse sends — not balloon — once the cap is hit while
  // compacting the consumed outq prefix, and (3) reap the silent
  // connection via the idle timeout in a way that leaves the transport
  // reusable for a fresh connect.
  TcpTransport::Options opts;
  opts.send_queue_cap_bytes = 32U * 1024U;
  opts.so_sndbuf = 4096;    // tiny kernel buffer: backpressure hits fast
  opts.idle_timeout = 2.0;  // no reads for 2s => reap (after the cap hits)
  TcpTransport client{opts};
  TcpTransport server;  // deliberately never polled at first
  RecordingHandler hs;
  RecordingHandler hc;
  server.set_handler(&hs);
  client.set_handler(&hc);
  const std::uint16_t port = server.listen("127.0.0.1", 0);
  const NodeId conn = client.connect("127.0.0.1", port);
  {
    const double t0 = client.now();
    while (client.now() - t0 < 10.0 && hc.ups.empty()) {
      client.poll_once(0.01);  // kernel completes the handshake alone
    }
  }
  ASSERT_EQ(hc.ups.size(), 1U);

  // Pump frames at the unread connection until the cap refuses one.
  const std::vector<std::uint8_t> chunk(4096, 0xAB);
  const double t0 = client.now();
  while (client.now() - t0 < 10.0 && hc.downs.empty() &&
         client.backpressure_refusals() == 0) {
    (void)client.send(conn, chunk);
    client.poll_once(0.001);
  }
  ASSERT_GT(client.backpressure_refusals(), 0U);
  // The queue is bounded by the cap, and partial socket drains were
  // compacted rather than accumulated.
  EXPECT_LE(client.send_queue_bytes(), opts.send_queue_cap_bytes);
  EXPECT_LE(client.send_queue_high_watermark(), opts.send_queue_cap_bytes);
  EXPECT_GT(client.partial_drains(), 0U);

  // The peer never speaks: the idle timer reaps the connection.
  {
    const double t1 = client.now();
    while (client.now() - t1 < 10.0 && hc.downs.empty()) {
      client.poll_once(0.01);
    }
  }
  ASSERT_EQ(hc.downs.size(), 1U);
  EXPECT_EQ(hc.downs[0], conn);
  EXPECT_GE(client.idle_reaps(), 1U);
  EXPECT_EQ(client.open_connections(), 0U);
  EXPECT_EQ(client.send_queue_bytes(), 0U);  // reap released the queue
  EXPECT_FALSE(client.send(conn, chunk));    // dead handle refuses

  // Reconnect-safe: the same transport can dial again, and with the
  // server now polling, traffic flows and the idle timer stays quiet.
  const NodeId conn2 = client.connect("127.0.0.1", port);
  ASSERT_TRUE(pump(server, client, [&] {
    return hc.ups.size() >= 2 && !hs.ups.empty();
  }));
  ASSERT_TRUE(client.send(conn2, bytes_of("alive")));
  ASSERT_TRUE(pump(server, client, [&] {
    return hs.received[hs.ups.back()].size() >= 5;
  }));
  EXPECT_EQ(hs.received[hs.ups.back()], bytes_of("alive"));
}

TEST(Tcp, ConnectRetriesAreCounted) {
  std::uint16_t dead_port = 0;
  {
    TcpTransport probe;
    dead_port = probe.listen("127.0.0.1", 0);
  }
  TcpTransport::Options opts;
  opts.connect_timeout = 0.3;
  opts.connect_retries = 2;
  opts.retry_backoff = 0.02;
  TcpTransport client{opts};
  RecordingHandler hc;
  client.set_handler(&hc);
  client.connect("127.0.0.1", dead_port);
  const double t0 = client.now();
  while (client.now() - t0 < 10.0 && hc.downs.empty()) {
    client.poll_once(0.01);
  }
  ASSERT_EQ(hc.downs.size(), 1U);
  // First attempt is not a retry; the two extra attempts are.
  EXPECT_EQ(client.connect_retries(), 2U);
  EXPECT_EQ(client.connects_failed(), 1U);
  EXPECT_EQ(client.connects_ok(), 0U);
}

}  // namespace
}  // namespace icollect::net
