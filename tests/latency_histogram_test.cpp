/// Tests for the exponential-bucket LatencyHistogram: bucket geometry
/// (index/floor/width round-trips across the uint64 range), the bounded
/// relative error of quantiles, exactness below one octave, merge and
/// reset semantics, and the seconds<->nanoseconds convention shared by
/// virtual-time and wall-clock latencies.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "stats/latency_histogram.h"

namespace icollect::stats {
namespace {

TEST(LatencyHistogram, EmptyIsAllZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.max(), 0U);
  EXPECT_EQ(h.quantile(0.5), 0U);
  EXPECT_EQ(h.quantile(1.0), 0U);
  EXPECT_DOUBLE_EQ(h.quantile_seconds(0.99), 0.0);
}

TEST(LatencyHistogram, BucketGeometryRoundTrips) {
  // Every bucket's floor must map back to that bucket, and the last
  // value of the bucket (floor + width - 1) must too; floor + width must
  // land in the next non-empty bucket.
  const std::vector<std::uint64_t> probes = {
      0,   1,    63,   64,        65,         127,        128,
      255, 4096, 5000, 1'000'000, 1ULL << 40, (1ULL << 40) + 12345,
      std::numeric_limits<std::uint64_t>::max() / 2};
  for (const std::uint64_t v : probes) {
    const std::size_t idx = LatencyHistogram::bucket_index(v);
    const std::uint64_t floor = LatencyHistogram::bucket_floor(idx);
    const std::uint64_t width = LatencyHistogram::bucket_width(idx);
    EXPECT_LE(floor, v) << "v=" << v;
    EXPECT_LT(v, floor + width) << "v=" << v;
    EXPECT_EQ(LatencyHistogram::bucket_index(floor), idx) << "v=" << v;
    EXPECT_EQ(LatencyHistogram::bucket_index(floor + width - 1), idx)
        << "v=" << v;
  }
}

TEST(LatencyHistogram, BucketIndexIsMonotone) {
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 100'000; v += 37) {
    const std::size_t idx = LatencyHistogram::bucket_index(v);
    EXPECT_GE(idx, prev) << "v=" << v;
    prev = idx;
  }
}

TEST(LatencyHistogram, ExactBelowOneOctave) {
  // Values < 2^kSubBits each get their own unit bucket, so quantiles of
  // small samples are exact.
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 50; ++v) h.record(v);
  EXPECT_EQ(h.count(), 50U);
  EXPECT_EQ(h.quantile(0.5), 25U);
  EXPECT_EQ(h.quantile(0.1), 5U);
  EXPECT_EQ(h.quantile(1.0), 50U);
  EXPECT_EQ(h.max(), 50U);
}

TEST(LatencyHistogram, QuantileRelativeErrorBounded) {
  // Uniform samples over several octaves: every quantile must be within
  // the documented 2^-(kSubBits+1) relative error (~0.8%).
  LatencyHistogram h;
  std::vector<std::uint64_t> samples;
  std::uint64_t x = 12345;
  for (int i = 0; i < 20'000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;  // LCG
    const std::uint64_t v = 1'000 + (x >> 40);  // ~[1e3, 1.7e7]
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  const double tol =
      1.0 / static_cast<double>(1ULL << (LatencyHistogram::kSubBits + 1));
  for (const double q : {0.5, 0.9, 0.99}) {
    const auto exact = static_cast<double>(
        samples[static_cast<std::size_t>(q * (samples.size() - 1))]);
    const auto approx = static_cast<double>(h.quantile(q));
    EXPECT_NEAR(approx / exact, 1.0, 2.0 * tol) << "q=" << q;
  }
  EXPECT_EQ(h.quantile(1.0), samples.back());
}

TEST(LatencyHistogram, QuantileClampsToObservedMax) {
  LatencyHistogram h;
  h.record(1000);  // single sample: every quantile is that sample's bucket
  EXPECT_LE(h.quantile(0.99), 1000U);
  EXPECT_EQ(h.quantile(1.0), 1000U);
}

TEST(LatencyHistogram, SecondsRoundTripAsNanoseconds) {
  LatencyHistogram h;
  h.record_seconds(0.002);  // 2ms -> 2'000'000 ns
  h.record_seconds(-1.0);   // clamps to 0
  EXPECT_EQ(h.count(), 2U);
  EXPECT_EQ(h.max(), 2'000'000U);
  EXPECT_NEAR(h.max_seconds(), 0.002, 1e-12);
  EXPECT_NEAR(h.quantile_seconds(1.0), 0.002, 1e-12);
}

TEST(LatencyHistogram, MergeFoldsCountsAndMax) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 100; ++i) a.record(10);
  for (int i = 0; i < 100; ++i) b.record(1'000'000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200U);
  EXPECT_EQ(a.max(), 1'000'000U);
  EXPECT_EQ(a.quantile(0.25), 10U);
  const double rel = static_cast<double>(a.quantile(0.9)) / 1e6;
  EXPECT_NEAR(rel, 1.0, 0.01);
  // Merging an empty histogram is a no-op.
  const std::uint64_t before = a.count();
  a.merge(LatencyHistogram{});
  EXPECT_EQ(a.count(), before);
}

TEST(LatencyHistogram, ResetClearsSamplesKeepsWorking) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.record(500);
  h.reset();
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.max(), 0U);
  EXPECT_EQ(h.quantile(0.5), 0U);
  h.record(7);
  EXPECT_EQ(h.count(), 1U);
  EXPECT_EQ(h.quantile(1.0), 7U);
}

}  // namespace
}  // namespace icollect::stats
