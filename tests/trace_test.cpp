/// Protocol trace tests: the event stream must be time-ordered, complete
/// (counts agree with the metrics plane), and reconstructible into
/// per-segment lifecycles.

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "p2p/network.h"

namespace icollect::p2p {
namespace {

ProtocolConfig traced_config() {
  ProtocolConfig cfg;
  cfg.num_peers = 50;
  cfg.lambda = 8.0;
  cfg.segment_size = 4;
  cfg.mu = 6.0;
  cfg.gamma = 1.0;
  cfg.buffer_cap = 60;
  cfg.num_servers = 2;
  cfg.set_normalized_capacity(3.0);
  cfg.fidelity = CollectionFidelity::kStateCounter;
  cfg.churn.enabled = true;
  cfg.churn.mean_lifetime = 4.0;
  cfg.seed = 21;
  return cfg;
}

TEST(Trace, EventsAreTimeOrderedAndCountsMatchMetrics) {
  Network net{traced_config()};
  std::vector<TraceEvent> events;
  net.set_trace_sink([&](const TraceEvent& ev) { events.push_back(ev); });
  net.run_until(10.0);

  ASSERT_FALSE(events.empty());
  std::unordered_map<TraceEventKind, std::uint64_t> counts;
  double last_t = 0.0;
  for (const auto& ev : events) {
    EXPECT_GE(ev.at, last_t);
    last_t = ev.at;
    ++counts[ev.kind];
  }
  const auto& m = net.metrics();
  EXPECT_EQ(counts[TraceEventKind::kSegmentInjected], m.segments_injected);
  EXPECT_EQ(counts[TraceEventKind::kGossipSent], m.gossip_sent);
  EXPECT_EQ(counts[TraceEventKind::kTtlExpired], m.ttl_expirations);
  EXPECT_EQ(counts[TraceEventKind::kSegmentLost], m.segments_lost);
  EXPECT_EQ(counts[TraceEventKind::kPeerDeparted], m.peers_departed);
  EXPECT_EQ(counts[TraceEventKind::kSegmentDecoded],
            net.servers().segments_decoded());
  // Pull events = attempts that actually reached a peer.
  EXPECT_EQ(counts[TraceEventKind::kServerPull], net.servers().pulls());
}

TEST(Trace, SegmentLifecycleIsWellFormed) {
  Network net{traced_config()};
  // Per segment: injected exactly once, and (decoded, lost) mutually
  // exclusive; every gossip/ttl/pull on it happens after injection.
  struct Life {
    int injected = 0;
    int decoded = 0;
    int lost = 0;
    double injected_at = -1.0;
  };
  std::unordered_map<coding::SegmentId, Life> lives;
  net.set_trace_sink([&](const TraceEvent& ev) {
    if (ev.kind == TraceEventKind::kPeerDeparted) return;
    Life& life = lives[ev.segment];
    switch (ev.kind) {
      case TraceEventKind::kSegmentInjected:
        ++life.injected;
        life.injected_at = ev.at;
        break;
      case TraceEventKind::kSegmentDecoded:
        ++life.decoded;
        break;
      case TraceEventKind::kSegmentLost:
        ++life.lost;
        break;
      default:
        EXPECT_GE(life.injected, 1) << ev.to_string();
        break;
    }
  });
  net.run_until(10.0);
  ASSERT_FALSE(lives.empty());
  for (const auto& [id, life] : lives) {
    EXPECT_EQ(life.injected, 1) << id.to_string();
    EXPECT_LE(life.decoded, 1) << id.to_string();
    EXPECT_LE(life.lost, 1) << id.to_string();
    // A decoded-then-lost sequence is allowed in registry terms but the
    // lost event only fires for undecoded segments:
    EXPECT_FALSE(life.decoded == 1 && life.lost == 1) << id.to_string();
  }
}

TEST(Trace, SinkCanBeCleared) {
  Network net{traced_config()};
  std::size_t n = 0;
  net.set_trace_sink([&](const TraceEvent&) { ++n; });
  net.run_until(2.0);
  const std::size_t at_clear = n;
  EXPECT_GT(at_clear, 0u);
  net.set_trace_sink(nullptr);
  net.run_until(4.0);
  EXPECT_EQ(n, at_clear);
}

TEST(Trace, GossipAuxIsAValidSlot) {
  Network net{traced_config()};
  net.set_trace_sink([&](const TraceEvent& ev) {
    if (ev.kind == TraceEventKind::kGossipSent) {
      EXPECT_LT(ev.aux, traced_config().num_peers);
      EXPECT_NE(ev.aux, ev.slot);  // no self-gossip
    }
  });
  net.run_until(5.0);
}

TEST(Trace, ToStringIsReadable) {
  TraceEvent ev{TraceEventKind::kGossipSent, 1.5, 3, coding::SegmentId{7, 9},
                12};
  const std::string text = ev.to_string();
  EXPECT_NE(text.find("gossip"), std::string::npos);
  EXPECT_NE(text.find("7:9"), std::string::npos);
}

}  // namespace
}  // namespace icollect::p2p
