/// ServerBank tests: real-coding and state-counter collection paths.

#include <gtest/gtest.h>

#include "coding/encoder.h"
#include "proto/server_bank.h"
#include "common/rng.h"

namespace icollect::proto {
namespace {

std::vector<std::vector<std::uint8_t>> originals(std::size_t s,
                                                 std::size_t bytes,
                                                 common::Rng& rng) {
  std::vector<std::vector<std::uint8_t>> v(s);
  for (auto& b : v) {
    b.resize(bytes);
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.gf_element());
  }
  return v;
}

TEST(ServerBank, RealCodingDecodesSegment) {
  common::Rng rng{81};
  const coding::SegmentId id{1, 0};
  const auto orig = originals(4, 8, rng);
  const coding::SegmentEncoder enc{id, orig};
  ServerBank bank{/*keep_payloads=*/true};
  std::size_t decodes = 0;
  bank.set_decode_callback([&](const ServerBank::DecodeEvent& ev) {
    ++decodes;
    EXPECT_EQ(ev.id, id);
    EXPECT_EQ(ev.segment_size, 4u);
    ASSERT_NE(ev.decoder, nullptr);
    EXPECT_TRUE(ev.decoder->complete());
    EXPECT_DOUBLE_EQ(ev.when, 3.5);
  });
  while (!bank.is_decoded(id)) {
    (void)bank.offer(enc.encode(rng), 3.5);
  }
  EXPECT_EQ(decodes, 1u);
  EXPECT_EQ(bank.segments_decoded(), 1u);
  EXPECT_EQ(bank.original_blocks_recovered(), 4u);
  EXPECT_EQ(bank.state(id), 4u);
  ASSERT_NE(bank.originals(id), nullptr);
  EXPECT_EQ(*bank.originals(id), orig);
}

TEST(ServerBank, RedundantAfterDecode) {
  common::Rng rng{82};
  const coding::SegmentId id{1, 0};
  const coding::SegmentEncoder enc{id, originals(2, 4, rng)};
  ServerBank bank;
  while (!bank.is_decoded(id)) (void)bank.offer(enc.encode(rng), 0.0);
  const auto result = bank.offer(enc.encode(rng), 1.0);
  EXPECT_EQ(result, ServerBank::PullResult::kAlreadyDecoded);
  EXPECT_GE(bank.redundant_pulls(), 1u);
}

TEST(ServerBank, DependentBlockIsRedundant) {
  common::Rng rng{83};
  const coding::SegmentId id{2, 0};
  const coding::SegmentEncoder enc{id, originals(5, 4, rng)};
  ServerBank bank;
  const auto b = enc.encode(rng);
  EXPECT_EQ(bank.offer(b, 0.0), ServerBank::PullResult::kInnovative);
  EXPECT_EQ(bank.offer(b, 0.0), ServerBank::PullResult::kRedundant);
  EXPECT_EQ(bank.state(id), 1u);
  EXPECT_EQ(bank.pulls(), 2u);
  EXPECT_EQ(bank.innovative_pulls(), 1u);
  EXPECT_EQ(bank.redundant_pulls(), 1u);
}

TEST(ServerBank, CounterModeAlwaysAdvancesUntilComplete) {
  const coding::SegmentId id{3, 0};
  ServerBank bank;
  std::size_t decodes = 0;
  bank.set_decode_callback([&](const ServerBank::DecodeEvent& ev) {
    ++decodes;
    EXPECT_EQ(ev.decoder, nullptr);  // no real decoder in counter mode
    EXPECT_EQ(ev.segment_size, 3u);
  });
  EXPECT_EQ(bank.offer_counted(id, 3, 0.1),
            ServerBank::PullResult::kInnovative);
  EXPECT_EQ(bank.state(id), 1u);
  EXPECT_EQ(bank.offer_counted(id, 3, 0.2),
            ServerBank::PullResult::kInnovative);
  EXPECT_EQ(bank.offer_counted(id, 3, 0.3),
            ServerBank::PullResult::kInnovative);
  EXPECT_TRUE(bank.is_decoded(id));
  EXPECT_EQ(decodes, 1u);
  EXPECT_EQ(bank.offer_counted(id, 3, 0.4),
            ServerBank::PullResult::kAlreadyDecoded);
  EXPECT_EQ(bank.state(id), 3u);
}

TEST(ServerBank, CounterModeSegmentSizeOneDecodesImmediately) {
  ServerBank bank;
  EXPECT_EQ(bank.offer_counted({4, 0}, 1, 0.0),
            ServerBank::PullResult::kInnovative);
  EXPECT_TRUE(bank.is_decoded({4, 0}));
  EXPECT_EQ(bank.original_blocks_recovered(), 1u);
}

TEST(ServerBank, TracksManySegmentsIndependently) {
  common::Rng rng{84};
  ServerBank bank;
  for (std::uint32_t k = 0; k < 10; ++k) {
    (void)bank.offer_counted({k, 0}, 5, 0.0);
  }
  EXPECT_EQ(bank.segments_in_progress(), 10u);
  for (std::uint32_t k = 0; k < 10; ++k) {
    EXPECT_EQ(bank.state({k, 0}), 1u);
  }
  EXPECT_EQ(bank.state({99, 0}), 0u);  // never seen
}

TEST(ServerBank, DiscardPayloadsMode) {
  common::Rng rng{85};
  const coding::SegmentId id{5, 0};
  const coding::SegmentEncoder enc{id, originals(2, 4, rng)};
  ServerBank bank{/*keep_payloads=*/false};
  while (!bank.is_decoded(id)) (void)bank.offer(enc.encode(rng), 0.0);
  EXPECT_EQ(bank.originals(id), nullptr);
}

TEST(ServerBank, CounterModeZeroSizeViolatesContract) {
  ServerBank bank;
  EXPECT_THROW((void)bank.offer_counted({1, 1}, 0, 0.0),
               icollect::ContractViolation);
}

}  // namespace
}  // namespace icollect::proto
