/// Tests for dense GF(2^8) matrices and Gaussian elimination.

#include <gtest/gtest.h>

#include "gf/gf_matrix.h"
#include "gf/gf_vector.h"
#include "sim/random.h"

namespace icollect::gf {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, sim::Rng& rng) {
  Matrix m{r, c};
  for (std::size_t i = 0; i < r; ++i) rng.fill_gf(m.row(i));
  return m;
}

TEST(GfMatrix, ZeroConstructionShapeAndContent) {
  const Matrix m{3, 5};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 5u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(is_zero(m.row(i)));
  }
}

TEST(GfMatrix, InitializerDataRoundTrip) {
  const std::vector<Element> data{1, 2, 3, 4, 5, 6};
  const Matrix m{2, 3, data};
  EXPECT_EQ(m.at(0, 0), 1);
  EXPECT_EQ(m.at(1, 2), 6);
}

TEST(GfMatrix, InitializerSizeMismatchViolatesContract) {
  const std::vector<Element> data{1, 2, 3};
  EXPECT_THROW((Matrix{2, 2, data}), ContractViolation);
}

TEST(GfMatrix, IdentityBehaves) {
  const Matrix id = Matrix::identity(4);
  EXPECT_EQ(id.rank(), 4u);
  sim::Rng rng{21};
  const Matrix a = random_matrix(4, 4, rng);
  EXPECT_EQ(id.multiply(a), a);
  EXPECT_EQ(a.multiply(id), a);
}

TEST(GfMatrix, OutOfRangeAccessViolatesContract) {
  Matrix m{2, 2};
  EXPECT_THROW((void)m.at(2, 0), ContractViolation);
  EXPECT_THROW(m.set(0, 2, 1), ContractViolation);
  EXPECT_THROW((void)m.row(5), ContractViolation);
}

TEST(GfMatrix, AppendRowGrows) {
  Matrix m{0, 3};
  const std::vector<Element> r1{1, 0, 0};
  const std::vector<Element> r2{0, 1, 0};
  m.append_row(r1);
  m.append_row(r2);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.rank(), 2u);
  const std::vector<Element> bad{1, 2};
  EXPECT_THROW(m.append_row(bad), ContractViolation);
}

TEST(GfMatrix, RankOfDependentRows) {
  Matrix m{0, 4};
  sim::Rng rng{22};
  std::vector<Element> a(4), b(4);
  rng.fill_gf(a);
  rng.fill_gf(b);
  m.append_row(a);
  m.append_row(b);
  // A row that is 3*a + 7*b must not raise the rank.
  std::vector<Element> dep(4, 0);
  add_scaled(dep, a, 3);
  add_scaled(dep, b, 7);
  m.append_row(dep);
  EXPECT_LE(m.rank(), 2u);
}

TEST(GfMatrix, RrefIdempotentAndRankStable) {
  sim::Rng rng{23};
  Matrix m = random_matrix(5, 8, rng);
  Matrix copy = m;
  const std::size_t r1 = copy.reduce_to_rref();
  Matrix twice = copy;
  const std::size_t r2 = twice.reduce_to_rref();
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(copy, twice);
  EXPECT_EQ(m.rank(), r1);
}

TEST(GfMatrix, InverseRoundTrip) {
  sim::Rng rng{24};
  // Random square GF(256) matrices are invertible w.h.p.; retry until one is.
  for (int attempt = 0; attempt < 10; ++attempt) {
    Matrix a = random_matrix(6, 6, rng);
    if (!a.invertible()) continue;
    const Matrix inv = a.inverse();
    EXPECT_EQ(a.multiply(inv), Matrix::identity(6));
    EXPECT_EQ(inv.multiply(a), Matrix::identity(6));
    return;
  }
  FAIL() << "no invertible random matrix in 10 draws (p < 1e-20)";
}

TEST(GfMatrix, InverseOfSingularViolatesContract) {
  Matrix m{2, 2};  // zero matrix
  EXPECT_FALSE(m.invertible());
  EXPECT_THROW((void)m.inverse(), ContractViolation);
}

TEST(GfMatrix, SolveRecoversVector) {
  sim::Rng rng{25};
  for (int attempt = 0; attempt < 10; ++attempt) {
    Matrix a = random_matrix(5, 5, rng);
    if (!a.invertible()) continue;
    std::vector<Element> x(5);
    rng.fill_gf(x);
    const std::vector<Element> b = a.multiply(x);
    EXPECT_EQ(a.solve(b), x);
    return;
  }
  FAIL() << "no invertible random matrix in 10 draws";
}

TEST(GfMatrix, SolveBatchedMatchesColumnwise) {
  sim::Rng rng{26};
  Matrix a{0, 3};
  // A known invertible matrix: identity plus an upper-shift.
  a.append_row(std::vector<Element>{1, 1, 0});
  a.append_row(std::vector<Element>{0, 1, 1});
  a.append_row(std::vector<Element>{0, 0, 1});
  const Matrix x = random_matrix(3, 4, rng);
  const Matrix b = a.multiply(x);
  EXPECT_EQ(a.solve(b), x);
}

TEST(GfMatrix, MultiplyDimensionMismatchViolatesContract) {
  const Matrix a{2, 3};
  const Matrix b{2, 3};
  EXPECT_THROW((void)a.multiply(b), ContractViolation);
}

TEST(GfMatrix, MultiplyAssociates) {
  sim::Rng rng{27};
  const Matrix a = random_matrix(3, 4, rng);
  const Matrix b = random_matrix(4, 2, rng);
  const Matrix c = random_matrix(2, 5, rng);
  EXPECT_EQ(a.multiply(b).multiply(c), a.multiply(b.multiply(c)));
}

TEST(GfMatrix, RandomSquareMatricesAreUsuallyInvertible) {
  // Probability a random n x n GF(q) matrix is invertible:
  // prod_{k=1..n} (1 - q^-k) ≈ 0.996 for q=256. Check the ratio roughly.
  sim::Rng rng{28};
  int invertible = 0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    if (random_matrix(8, 8, rng).invertible()) ++invertible;
  }
  EXPECT_GE(invertible, kTrials * 95 / 100);
}

TEST(GfMatrix, RectangularRankBounds) {
  sim::Rng rng{29};
  const Matrix wide = random_matrix(3, 10, rng);
  EXPECT_LE(wide.rank(), 3u);
  const Matrix tall = random_matrix(10, 3, rng);
  EXPECT_LE(tall.rank(), 3u);
}

}  // namespace
}  // namespace icollect::gf
