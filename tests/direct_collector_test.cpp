/// Baseline (Fig. 1(a) direct pull) tests: conservation, capacity limits,
/// overflow policies, churn loss, and flash-crowd behavior.

#include <gtest/gtest.h>

#include "p2p/direct_collector.h"

namespace icollect::p2p {
namespace {

ProtocolConfig base_config() {
  ProtocolConfig cfg;
  cfg.num_peers = 80;
  cfg.lambda = 5.0;
  cfg.buffer_cap = 50;
  cfg.num_servers = 4;
  cfg.set_normalized_capacity(10.0);  // ample: c = 10 > λ = 5
  cfg.seed = 3;
  return cfg;
}

void check_conservation(const DirectCollector& dc) {
  const auto& m = dc.metrics();
  std::uint64_t dropped_new = 0;
  // With kDropNewest, dropped blocks never enter the queue; with
  // kDropOldest they do and are evicted. Either way:
  //   generated = collected + lost_churn + backlog + dropped.
  EXPECT_EQ(m.blocks_generated,
            m.blocks_collected + m.blocks_lost_to_churn + dc.backlog_size() +
                m.blocks_dropped_overflow + dropped_new);
}

TEST(DirectCollector, AmpleCapacityCollectsNearlyEverything) {
  DirectCollector dc{base_config()};
  dc.warm_up(10.0);
  dc.run_until(dc.now() + 40.0);
  check_conservation(dc);
  EXPECT_NEAR(dc.normalized_throughput(), 1.0, 0.05);
  EXPECT_LT(dc.loss_fraction(), 0.01);
  EXPECT_GT(dc.mean_delay(), 0.0);
}

TEST(DirectCollector, ScarceCapacityIsServerBound) {
  ProtocolConfig cfg = base_config();
  cfg.set_normalized_capacity(2.0);  // c = 2 < λ = 5
  DirectCollector dc{cfg};
  dc.warm_up(15.0);
  dc.run_until(dc.now() + 40.0);
  check_conservation(dc);
  // Collected rate per peer is pinned at c, so normalized ≈ c/λ = 0.4.
  EXPECT_NEAR(dc.normalized_throughput(), 0.4, 0.05);
  // Overload: queues saturate and data drops.
  EXPECT_GT(dc.metrics().blocks_dropped_overflow, 0u);
}

TEST(DirectCollector, ChurnLosesDepartedPeersData) {
  ProtocolConfig cfg = base_config();
  cfg.set_normalized_capacity(2.0);
  cfg.churn.enabled = true;
  cfg.churn.mean_lifetime = 4.0;
  DirectCollector dc{cfg};
  dc.run_until(30.0);
  check_conservation(dc);
  EXPECT_GT(dc.metrics().peers_departed, 0u);
  EXPECT_GT(dc.metrics().blocks_lost_to_churn, 0u);
  EXPECT_GT(dc.loss_fraction(), 0.05);
}

TEST(DirectCollector, DropOldestKeepsQueueBounded) {
  ProtocolConfig cfg = base_config();
  cfg.set_normalized_capacity(0.5);
  cfg.buffer_cap = 10;
  DirectCollector dc{cfg, OverflowPolicy::kDropOldest};
  dc.run_until(30.0);
  check_conservation(dc);
  EXPECT_LE(dc.backlog_size(), cfg.num_peers * cfg.buffer_cap);
  EXPECT_GT(dc.metrics().blocks_dropped_overflow, 0u);
}

TEST(DirectCollector, FlashCrowdOverflowsButBaselineRateSurvives) {
  ProtocolConfig cfg = base_config();
  cfg.lambda = 2.0;
  cfg.buffer_cap = 20;
  cfg.set_normalized_capacity(3.0);  // fine for base load of 2...
  DirectCollector dc{cfg};
  const workload::FlashCrowdProfile burst{2.0, 10.0, 10.0, 14.0};  // λ→20
  dc.set_arrival_profile(&burst);
  dc.run_until(30.0);
  check_conservation(dc);
  // The 4-unit burst at 10x generated far more than c could absorb.
  EXPECT_GT(dc.metrics().blocks_dropped_overflow, 0u);
}

TEST(DirectCollector, DeterministicGivenSeed) {
  const ProtocolConfig cfg = base_config();
  DirectCollector a{cfg};
  DirectCollector b{cfg};
  a.run_until(12.0);
  b.run_until(12.0);
  EXPECT_EQ(a.metrics().blocks_generated, b.metrics().blocks_generated);
  EXPECT_EQ(a.metrics().blocks_collected, b.metrics().blocks_collected);
}

TEST(DirectCollector, DelayGrowsWithLoad) {
  ProtocolConfig light = base_config();
  light.set_normalized_capacity(20.0);
  DirectCollector a{light};
  a.warm_up(10.0);
  a.run_until(a.now() + 30.0);

  ProtocolConfig heavy = base_config();
  heavy.set_normalized_capacity(4.9);  // just below demand λ=5
  DirectCollector b{heavy};
  b.warm_up(10.0);
  b.run_until(b.now() + 30.0);

  EXPECT_GT(b.mean_delay(), a.mean_delay());
}

TEST(DirectCollector, ZeroLambdaGeneratesNothing) {
  ProtocolConfig cfg = base_config();
  cfg.lambda = 0.0;
  DirectCollector dc{cfg};
  dc.run_until(10.0);
  EXPECT_EQ(dc.metrics().blocks_generated, 0u);
  EXPECT_EQ(dc.metrics().blocks_collected, 0u);
  EXPECT_GT(dc.metrics().idle_pulls, 0u);
}

}  // namespace
}  // namespace icollect::p2p
