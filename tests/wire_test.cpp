/// Wire-protocol codec tests: every message type must survive a frame
/// round trip byte-exactly, the decoder must reassemble frames from
/// arbitrary stream chunking, and each malformation class must map to
/// its typed DecodeStatus — with the error latched until reset(), since
/// framing on a corrupted stream is unrecoverable.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "coding/coded_block.h"
#include "sim/random.h"
#include "wire/frame.h"
#include "wire/message.h"

namespace icollect::wire {
namespace {

coding::CodedBlock sample_block(std::size_t s, std::size_t payload_bytes,
                                std::uint64_t seed) {
  sim::Rng rng{seed};
  coding::CodedBlock b;
  b.segment = coding::SegmentId{7, 42};
  b.coefficients.resize(s);
  do {
    rng.fill_gf(b.coefficients);
  } while (b.is_degenerate());
  b.payload.resize(payload_bytes);
  for (auto& byte : b.payload) {
    byte = static_cast<std::uint8_t>(rng.gf_element());
  }
  return b;
}

/// A legacy (no scheduling extension) pull request as a Message.
Message pull_req(std::uint32_t token = 0) {
  PullRequest p;
  p.token = token;
  return Message{p};
}

/// Encode, feed the whole frame at once, and return the decoded message.
Message round_trip(const Message& m) {
  FrameDecoder dec;
  dec.feed(encoded_frame(m));
  auto res = dec.next();
  EXPECT_EQ(res.status, DecodeStatus::kFrame);
  EXPECT_EQ(dec.next().status, DecodeStatus::kNeedMore);
  return std::move(res.message);
}

TEST(WireFrame, HeaderLayout) {
  const Message m = pull_req(0x01020304);
  const auto frame = encoded_frame(m);
  ASSERT_GE(frame.size(), kFrameHeaderBytes);
  EXPECT_EQ(frame[0], kMagic[0]);
  EXPECT_EQ(frame[1], kMagic[1]);
  EXPECT_EQ(frame[2], kMagic[2]);
  EXPECT_EQ(frame[3], kMagic[3]);
  EXPECT_EQ(frame[4], kProtocolVersion);
  EXPECT_EQ(frame[5], static_cast<std::uint8_t>(MessageType::kPullRequest));
  EXPECT_EQ(frame[6], 0);  // reserved
  EXPECT_EQ(frame[7], 0);
  const std::uint32_t body_len = frame[8] | (frame[9] << 8U) |
                                 (frame[10] << 16U) |
                                 (static_cast<std::uint32_t>(frame[11]) << 24U);
  EXPECT_EQ(frame.size(), kFrameHeaderBytes + body_len);
  EXPECT_EQ(frame.size(), frame_size(m));
}

TEST(WireFrame, HelloRoundTrip) {
  Hello h;
  h.role = NodeRole::kServer;
  h.version_min = 1;
  h.version_max = 3;
  h.node_id = 0xDEADBEEF;
  h.segment_size = 12;
  h.buffer_cap = 1000;
  const auto out = std::get<Hello>(round_trip(Message{h}));
  EXPECT_EQ(out.role, h.role);
  EXPECT_EQ(out.version_min, h.version_min);
  EXPECT_EQ(out.version_max, h.version_max);
  EXPECT_EQ(out.node_id, h.node_id);
  EXPECT_EQ(out.segment_size, h.segment_size);
  EXPECT_EQ(out.buffer_cap, h.buffer_cap);
}

TEST(WireFrame, GossipBlockRoundTrip) {
  const auto block = sample_block(5, 33, 9);
  const auto out = std::get<GossipBlock>(round_trip(Message{GossipBlock{block}}));
  EXPECT_EQ(out.block.segment, block.segment);
  EXPECT_EQ(out.block.coefficients, block.coefficients);
  EXPECT_EQ(out.block.payload, block.payload);
}

TEST(WireFrame, GossipBlockNoPayloadRoundTrip) {
  const auto block = sample_block(4, 0, 2);
  const auto out = std::get<GossipBlock>(round_trip(Message{GossipBlock{block}}));
  EXPECT_EQ(out.block.coefficients, block.coefficients);
  EXPECT_TRUE(out.block.payload.empty());
}

TEST(WireFrame, PullRequestRoundTrip) {
  const auto out =
      std::get<PullRequest>(round_trip(pull_req(77)));
  EXPECT_EQ(out.token, 77U);
}

TEST(WireFrame, PullRequestLegacyBodyStaysFourBytes) {
  // A request with no scheduling extension must encode in the original
  // version-1 4-byte form — the byte-identity guarantee for the default
  // uniform policy.
  const Message m = pull_req(0x0A0B0C0D);
  const auto frame = encoded_frame(m);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 4);
  EXPECT_EQ(frame[kFrameHeaderBytes + 0], 0x0D);  // token, little-endian
  EXPECT_EQ(frame[kFrameHeaderBytes + 1], 0x0C);
  EXPECT_EQ(frame[kFrameHeaderBytes + 2], 0x0B);
  EXPECT_EQ(frame[kFrameHeaderBytes + 3], 0x0A);
}

TEST(WireFrame, PullRequestWantSummaryRoundTrip) {
  PullRequest p;
  p.token = 5;
  p.want_summary = true;
  const auto out = std::get<PullRequest>(round_trip(Message{p}));
  EXPECT_EQ(out.token, 5U);
  EXPECT_TRUE(out.want_summary);
  EXPECT_FALSE(out.want.has_value());
}

TEST(WireFrame, PullRequestWantSegmentRoundTrip) {
  PullRequest p;
  p.token = 6;
  p.want_summary = true;
  p.want = coding::SegmentId{31, 17};
  const auto out = std::get<PullRequest>(round_trip(Message{p}));
  EXPECT_EQ(out.token, 6U);
  EXPECT_TRUE(out.want_summary);
  ASSERT_TRUE(out.want.has_value());
  EXPECT_EQ(*out.want, (coding::SegmentId{31, 17}));

  PullRequest want_only;
  want_only.token = 7;
  want_only.want = coding::SegmentId{1, 2};
  const auto out2 = std::get<PullRequest>(round_trip(Message{want_only}));
  EXPECT_FALSE(out2.want_summary);
  ASSERT_TRUE(out2.want.has_value());
  EXPECT_EQ(*out2.want, (coding::SegmentId{1, 2}));
}

TEST(WireFrame, PullRequestBadExtensionRejected) {
  Message out;
  // flags byte present but zero: encodes nothing, malformed by contract.
  EXPECT_EQ(decode_body(MessageType::kPullRequest,
                        std::vector<std::uint8_t>{1, 0, 0, 0, 0}, out),
            DecodeStatus::kMalformedBody);
  // Unknown flag bits.
  EXPECT_EQ(decode_body(MessageType::kPullRequest,
                        std::vector<std::uint8_t>{1, 0, 0, 0, 4}, out),
            DecodeStatus::kMalformedBody);
  // flags says a wanted id follows, but the bytes are missing.
  EXPECT_EQ(decode_body(MessageType::kPullRequest,
                        std::vector<std::uint8_t>{1, 0, 0, 0, 2, 9, 9}, out),
            DecodeStatus::kMalformedBody);
  // Trailing garbage after a complete extension.
  std::vector<std::uint8_t> body{1, 0, 0, 0, 1, 0xEE};
  EXPECT_EQ(decode_body(MessageType::kPullRequest, body, out),
            DecodeStatus::kMalformedBody);
}

TEST(WireFrame, BufferSummaryRoundTrip) {
  BufferSummary s;
  s.segments = {coding::SegmentId{1, 0}, coding::SegmentId{2, 9},
                coding::SegmentId{0xFFFFFFFF, 0xFFFFFFFF}};
  const auto out = std::get<BufferSummary>(round_trip(Message{s}));
  EXPECT_EQ(out.segments, s.segments);
}

TEST(WireFrame, BufferSummaryEmptyRoundTrip) {
  const auto out =
      std::get<BufferSummary>(round_trip(Message{BufferSummary{}}));
  EXPECT_TRUE(out.segments.empty());
}

TEST(WireFrame, BufferSummaryEncoderTruncatesAtCap) {
  BufferSummary s;
  s.segments.resize(kMaxSummarySegments + 5,
                    coding::SegmentId{3, 4});
  const auto out = std::get<BufferSummary>(round_trip(Message{s}));
  EXPECT_EQ(out.segments.size(), kMaxSummarySegments);
  EXPECT_EQ(frame_size(Message{s}),
            kFrameHeaderBytes + 4 + 8 * kMaxSummarySegments);
}

TEST(WireFrame, BufferSummaryMalformedRejected) {
  Message out;
  std::vector<std::uint8_t> body;
  encode_body(Message{BufferSummary{{coding::SegmentId{1, 2}}}}, body);
  // Wrong summary codec version.
  auto bad = body;
  bad[0] = static_cast<std::uint8_t>(kBufferSummaryVersion + 1);
  EXPECT_EQ(decode_body(MessageType::kBufferSummary, bad, out),
            DecodeStatus::kMalformedBody);
  // Advertised count disagrees with the bytes present (both ways).
  bad = body;
  bad[2] = 2;  // claims 2 ids, carries 1
  EXPECT_EQ(decode_body(MessageType::kBufferSummary, bad, out),
            DecodeStatus::kMalformedBody);
  bad = body;
  bad.push_back(0);  // trailing garbage
  EXPECT_EQ(decode_body(MessageType::kBufferSummary, bad, out),
            DecodeStatus::kMalformedBody);
  // Forged count past the cap must be rejected before any allocation.
  bad = body;
  bad[2] = 0xFF;
  bad[3] = 0xFF;
  EXPECT_EQ(decode_body(MessageType::kBufferSummary, bad, out),
            DecodeStatus::kMalformedBody);
}

TEST(WireFrame, PullBlockWithBlockRoundTrip) {
  PullBlock pb;
  pb.token = 5;
  pb.occupancy = 31;
  pb.has_block = true;
  pb.block = sample_block(3, 8, 4);
  const auto out = std::get<PullBlock>(round_trip(Message{pb}));
  EXPECT_EQ(out.token, pb.token);
  EXPECT_EQ(out.occupancy, pb.occupancy);
  EXPECT_TRUE(out.has_block);
  EXPECT_EQ(out.block.coefficients, pb.block.coefficients);
  EXPECT_EQ(out.block.payload, pb.block.payload);
}

TEST(WireFrame, PullBlockEmptyRoundTrip) {
  PullBlock pb;
  pb.token = 6;
  pb.occupancy = 0;
  pb.has_block = false;
  const auto out = std::get<PullBlock>(round_trip(Message{pb}));
  EXPECT_EQ(out.token, 6U);
  EXPECT_FALSE(out.has_block);
  // An empty reply must not pay for a block on the wire.
  EXPECT_LT(frame_size(Message{pb}), frame_size(Message{[] {
              PullBlock full;
              full.has_block = true;
              full.block = sample_block(3, 8, 4);
              return full;
            }()}));
}

TEST(WireFrame, AckRoundTrip) {
  const auto out = std::get<SegmentDecodedAck>(
      round_trip(Message{SegmentDecodedAck{coding::SegmentId{9, 3}}}));
  EXPECT_EQ(out.segment, (coding::SegmentId{9, 3}));
}

TEST(WireFrame, ByeRoundTrip) {
  const auto out = std::get<Bye>(
      round_trip(Message{Bye{ByeReason::kVersionMismatch}}));
  EXPECT_EQ(out.reason, ByeReason::kVersionMismatch);
}

TEST(WireFrame, ByteAtATimeReassembly) {
  // The decoder owns stream reassembly: a frame delivered one byte at a
  // time must decode identically to one delivered whole.
  const Message m{GossipBlock{sample_block(6, 19, 11)}};
  const auto frame = encoded_frame(m);
  FrameDecoder dec;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_EQ(dec.next().status, DecodeStatus::kNeedMore);
    dec.feed({&frame[i], 1});
  }
  const auto res = dec.next();
  ASSERT_EQ(res.status, DecodeStatus::kFrame);
  EXPECT_EQ(std::get<GossipBlock>(res.message).block.payload,
            std::get<GossipBlock>(m).block.payload);
}

TEST(WireFrame, BackToBackFramesInOneFeed) {
  std::vector<std::uint8_t> stream;
  encode_frame(pull_req(1), stream);
  encode_frame(pull_req(2), stream);
  encode_frame(Message{Bye{}}, stream);
  FrameDecoder dec;
  dec.feed(stream);
  EXPECT_EQ(std::get<PullRequest>(dec.next().message).token, 1U);
  EXPECT_EQ(std::get<PullRequest>(dec.next().message).token, 2U);
  EXPECT_EQ(dec.next().status, DecodeStatus::kFrame);
  EXPECT_EQ(dec.next().status, DecodeStatus::kNeedMore);
  EXPECT_EQ(dec.frames_decoded(), 3U);
  EXPECT_EQ(dec.buffered_bytes(), 0U);
}

TEST(WireFrame, BadMagicDetectedAndLatched) {
  auto frame = encoded_frame(pull_req());
  frame[0] ^= 0xFF;
  FrameDecoder dec;
  dec.feed(frame);
  EXPECT_EQ(dec.next().status, DecodeStatus::kBadMagic);
  // The error latches: further feeds cannot resurrect the stream.
  dec.feed(encoded_frame(pull_req()));
  EXPECT_EQ(dec.next().status, DecodeStatus::kBadMagic);
  EXPECT_EQ(dec.errors(), 1U);
  dec.reset();
  dec.feed(encoded_frame(pull_req()));
  EXPECT_EQ(dec.next().status, DecodeStatus::kFrame);
}

TEST(WireFrame, BadVersionDetected) {
  auto frame = encoded_frame(pull_req());
  frame[4] = kProtocolVersion + 40;
  FrameDecoder dec;
  dec.feed(frame);
  EXPECT_EQ(dec.next().status, DecodeStatus::kBadVersion);
}

TEST(WireFrame, BadTypeDetected) {
  auto frame = encoded_frame(pull_req());
  frame[5] = 0xEE;
  FrameDecoder dec;
  dec.feed(frame);
  EXPECT_EQ(dec.next().status, DecodeStatus::kBadType);
}

TEST(WireFrame, OversizedLengthRejectedBeforeBuffering) {
  // A hostile length prefix is rejected from the header alone — no body
  // bytes are ever required, so there is nothing to balloon.
  auto frame = encoded_frame(pull_req());
  frame[8] = 0xFF;
  frame[9] = 0xFF;
  frame[10] = 0xFF;
  frame[11] = 0x7F;
  FrameDecoder dec;
  dec.feed({frame.data(), kFrameHeaderBytes});
  EXPECT_EQ(dec.next().status, DecodeStatus::kOversized);
}

TEST(WireFrame, CrcMismatchDetected) {
  auto frame = encoded_frame(pull_req(3));
  frame.back() ^= 0x01;  // flip one body bit
  FrameDecoder dec;
  dec.feed(frame);
  EXPECT_EQ(dec.next().status, DecodeStatus::kBadCrc);
}

TEST(WireFrame, MalformedBodyDetected) {
  // A Hello body truncated to one byte passes CRC (we recompute it) but
  // cannot parse.
  Message out;
  const std::vector<std::uint8_t> stub{0x01};
  EXPECT_EQ(decode_body(MessageType::kHello, stub, out),
            DecodeStatus::kMalformedBody);
}

TEST(WireFrame, BlockSegmentSizeCapEnforced) {
  // A block body advertising an absurd coefficient count must be
  // rejected as malformed, not allocated.
  const auto block = sample_block(2, 4, 1);
  std::vector<std::uint8_t> body;
  encode_body(Message{GossipBlock{block}}, body);
  // The s field lives in the body; force it huge. Layout: SegmentId
  // (origin u32 + seq u32) then s as u16.
  body[8] = 0xFF;
  body[9] = 0xFF;
  Message out;
  EXPECT_EQ(decode_body(MessageType::kGossipBlock, body, out),
            DecodeStatus::kMalformedBody);
}

TEST(WireFrame, CustomBodyCapRespected) {
  FrameDecoder tiny{64};
  const Message big{GossipBlock{sample_block(4, 200, 3)}};
  tiny.feed(encoded_frame(big));
  EXPECT_EQ(tiny.next().status, DecodeStatus::kOversized);
}

TEST(WireFrame, PerStatusErrorCountersAndResyncs) {
  // Each latched error increments its own status bucket exactly once,
  // and a reset() that discards a latched error counts as a resync.
  FrameDecoder dec;

  auto bad_magic = encoded_frame(pull_req());
  bad_magic[0] ^= 0xFF;
  dec.feed(bad_magic);
  EXPECT_EQ(dec.next().status, DecodeStatus::kBadMagic);
  // Latched: repeated next() calls must not inflate the bucket.
  EXPECT_EQ(dec.next().status, DecodeStatus::kBadMagic);
  EXPECT_EQ(dec.errors_by(DecodeStatus::kBadMagic), 1U);
  EXPECT_EQ(dec.resyncs(), 0U);
  dec.reset();
  EXPECT_EQ(dec.resyncs(), 1U);

  auto bad_crc = encoded_frame(pull_req(9));
  bad_crc.back() ^= 0x01;
  dec.feed(bad_crc);
  EXPECT_EQ(dec.next().status, DecodeStatus::kBadCrc);
  EXPECT_EQ(dec.errors_by(DecodeStatus::kBadCrc), 1U);
  EXPECT_EQ(dec.errors_by(DecodeStatus::kBadMagic), 1U);
  EXPECT_EQ(dec.errors(), 2U);  // aggregate stays the sum of buckets
  dec.reset();
  EXPECT_EQ(dec.resyncs(), 2U);

  // A clean-state reset is not a resync — nothing was discarded.
  dec.reset();
  EXPECT_EQ(dec.resyncs(), 2U);

  // A healthy decode touches no error bucket.
  dec.feed(encoded_frame(pull_req(1)));
  EXPECT_EQ(dec.next().status, DecodeStatus::kFrame);
  EXPECT_EQ(dec.errors(), 2U);
  EXPECT_EQ(dec.errors_by(DecodeStatus::kBadVersion), 0U);
  EXPECT_EQ(dec.errors_by(DecodeStatus::kOversized), 0U);
  EXPECT_EQ(dec.errors_by(DecodeStatus::kMalformedBody), 0U);
}

TEST(WireFrame, EncodeIntoReusesBuffer) {
  std::vector<std::uint8_t> scratch;
  encode_frame(pull_req(1), scratch);
  const std::size_t first = scratch.size();
  encode_frame(pull_req(2), scratch);
  // encode_frame appends; callers clear() between sends.
  EXPECT_EQ(scratch.size(), 2 * first);
}

}  // namespace
}  // namespace icollect::wire
