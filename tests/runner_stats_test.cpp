/// Statistical soundness of the replica aggregates: Welford moments
/// against closed-form fixtures, Student-t critical values, and an
/// empirical coverage check that the reported 95% CI actually covers
/// the true mean ~95% of the time. A CI that is merely printed is
/// decoration; this file is what makes `mean±ci` a claim.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/report.h"
#include "runner/aggregate.h"
#include "runner/seed_sequence.h"
#include "stats/summary.h"

namespace icollect::runner {
namespace {

// --- Student-t critical values ----------------------------------------------

TEST(StudentT, MatchesTables) {
  EXPECT_NEAR(student_t975(1), 12.706, 1e-3);
  EXPECT_NEAR(student_t975(2), 4.303, 1e-3);
  EXPECT_NEAR(student_t975(4), 2.776, 1e-3);
  EXPECT_NEAR(student_t975(7), 2.365, 1e-3);
  EXPECT_NEAR(student_t975(10), 2.228, 1e-3);
  EXPECT_NEAR(student_t975(30), 2.042, 1e-3);
}

TEST(StudentT, NormalLimitBeyondTable) {
  EXPECT_NEAR(student_t975(31), 1.96, 1e-9);
  EXPECT_NEAR(student_t975(1000), 1.96, 1e-9);
}

TEST(StudentT, MonotoneDecreasingInDf) {
  for (std::uint64_t df = 1; df < 30; ++df) {
    EXPECT_GT(student_t975(df), student_t975(df + 1)) << "df=" << df;
  }
}

// --- Welford closed-form fixture --------------------------------------------

TEST(WelfordFixture, FiveKnownSamples) {
  // {1,2,3,4,5}: mean 3, sample variance 2.5, CI = t(4)·s/√5.
  stats::Summary s;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  const double expected_ci =
      student_t975(4) * std::sqrt(2.5) / std::sqrt(5.0);
  EXPECT_NEAR(ci95_half_width(s), expected_ci, 1e-9);
  EXPECT_NEAR(ci95_half_width(s), 1.963, 1e-3);
}

TEST(WelfordFixture, ShiftedDataKeepsVariance) {
  // Welford's claim to fame: no catastrophic cancellation on a large
  // common offset. Naive sum-of-squares loses this fixture.
  stats::Summary s;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(1.0e9 + x);
  EXPECT_NEAR(s.mean(), 1.0e9 + 3.0, 1e-3);
  EXPECT_NEAR(s.variance(), 2.5, 1e-6);
}

TEST(WelfordFixture, DegenerateCounts) {
  stats::Summary s;
  EXPECT_EQ(ci95_half_width(s), 0.0);  // no samples
  s.add(7.0);
  EXPECT_EQ(ci95_half_width(s), 0.0);  // one sample: no interval
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  s.add(7.0);
  EXPECT_DOUBLE_EQ(ci95_half_width(s), 0.0);  // zero variance
}

// --- AggregateReport fixture -------------------------------------------------

CollectionReport report_with(double throughput, std::uint64_t pulls) {
  CollectionReport r;
  r.throughput = throughput;
  r.normalized_throughput = throughput / 10.0;
  r.server_pulls = pulls;
  r.mean_blocks_per_peer = 2.0 * throughput;
  return r;
}

TEST(AggregateReport, FoldsMetricsByName) {
  AggregateReport agg;
  agg.add(report_with(1.0, 10));
  agg.add(report_with(2.0, 20));
  agg.add(report_with(3.0, 30));
  EXPECT_EQ(agg.replicas(), 3u);
  EXPECT_DOUBLE_EQ(agg.mean("throughput"), 2.0);
  EXPECT_DOUBLE_EQ(agg.metric("throughput").variance(), 1.0);
  EXPECT_DOUBLE_EQ(agg.mean("server_pulls"), 20.0);
  EXPECT_DOUBLE_EQ(agg.mean("mean_blocks_per_peer"), 4.0);
  const double expected_ci = student_t975(2) * 1.0 / std::sqrt(3.0);
  EXPECT_NEAR(agg.ci95("throughput"), expected_ci, 1e-9);
  EXPECT_THROW((void)agg.metric("no_such_metric"), std::out_of_range);
}

TEST(AggregateReport, JsonCarriesEveryMetric) {
  AggregateReport agg;
  agg.add(report_with(1.5, 12));
  agg.add(report_with(2.5, 14));
  const std::string json = agg.to_json();
  EXPECT_NE(json.find("\"replicas\":2"), std::string::npos);
  for (const auto name : kReportMetricNames) {
    EXPECT_NE(json.find("\"" + std::string{name} + "\""), std::string::npos)
        << "missing metric " << name;
  }
  for (const char* field : {"mean", "stddev", "ci95", "min", "max"}) {
    EXPECT_NE(json.find(field), std::string::npos);
  }
}

// --- Empirical CI coverage ---------------------------------------------------

TEST(CiCoverage, NominalRateOnGaussianSamples) {
  // 400 independent experiments, each estimating the mean of
  // N(mu, sigma^2) from n=8 draws with a t-based 95% CI. The t interval
  // is exact for Gaussian data, so coverage is Binomial(400, 0.95):
  // sd ≈ 1.1%, and [90%, 99%] is a > 4-sigma acceptance band — tight
  // enough to catch a z-vs-t mixup (z at n=8 covers ~92%, which the
  // paired check below targets directly).
  constexpr int kExperiments = 400;
  constexpr int kSamples = 8;
  constexpr double kMu = 3.7;
  constexpr double kSigma = 2.0;

  const SeedSequence seeds = SeedSequence{0xC0FFEE}.child(1);
  int covered = 0;
  int covered_z = 0;
  for (int e = 0; e < kExperiments; ++e) {
    std::mt19937_64 rng{seeds.stream(static_cast<std::uint64_t>(e))};
    std::normal_distribution<double> dist{kMu, kSigma};
    stats::Summary s;
    for (int i = 0; i < kSamples; ++i) s.add(dist(rng));
    const double ci = ci95_half_width(s);
    if (std::abs(s.mean() - kMu) <= ci) ++covered;
    const double z_ci = 1.96 * s.stddev() / std::sqrt(double{kSamples});
    if (std::abs(s.mean() - kMu) <= z_ci) ++covered_z;
  }
  const double rate = static_cast<double>(covered) / kExperiments;
  EXPECT_GE(rate, 0.90) << "CI too narrow: covers " << rate;
  EXPECT_LE(rate, 0.99) << "CI too wide: covers " << rate;
  // The t correction must buy real coverage over the naive z interval
  // at this small n — this is the regression test for quietly swapping
  // student_t975 back to 1.96.
  EXPECT_GT(covered, covered_z);
}

}  // namespace
}  // namespace icollect::runner
