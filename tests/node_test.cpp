/// End-to-end tests of the live node runtime over the deterministic
/// loopback transport: a cluster of real PeerNode/ServerNode state
/// machines speaking the framed wire protocol must collect every
/// injected segment, recover payloads byte-exactly (checked against the
/// injecting peers' CRCs), reproduce bit-for-bit per seed, and survive
/// link faults and garbage bytes without crashing.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/crc32.h"
#include "net/loopback.h"
#include "node/cluster.h"
#include "obs/metrics_registry.h"
#include "proto/trace.h"
#include "node/node_config.h"
#include "node/peer_node.h"
#include "node/server_node.h"
#include "wire/frame.h"

namespace icollect::node {
namespace {

ClusterConfig small_cluster_config() {
  ClusterConfig cfg;
  cfg.num_peers = 6;
  cfg.num_servers = 2;
  cfg.segment_size = 4;
  cfg.buffer_cap = 32;
  cfg.payload_bytes = 24;
  cfg.lambda = 8.0;
  cfg.mu = 4.0;
  cfg.gamma = 1.0;
  cfg.server_rate = 20.0;
  cfg.segments_per_peer = 3;
  cfg.retain_own_until_acked = true;
  cfg.seed = 11;
  cfg.net.seed = 11;
  return cfg;
}

TEST(NodeCluster, CollectsEverySegmentAtEveryServer) {
  LoopbackCluster cluster{small_cluster_config()};
  ASSERT_TRUE(cluster.run_to_completion(300.0))
      << "decoded " << cluster.segments_decoded() << "/"
      << cluster.segments_injected();
  const std::uint64_t injected = cluster.segments_injected();
  EXPECT_EQ(injected, 6U * 3U);
  EXPECT_EQ(cluster.segments_decoded(), injected);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(cluster.server(i).segments_decoded(), injected);
  }
  // Collaborating servers need at least s innovative blocks per segment
  // pooled across pulls and forwarding.
  EXPECT_GE(cluster.innovative_pulls(), injected * 4U);
}

TEST(NodeCluster, PayloadsRecoveredByteExactly) {
  const auto cfg = small_cluster_config();
  LoopbackCluster cluster{cfg};
  ASSERT_TRUE(cluster.run_to_completion(300.0));
  // Every decoded segment's recovered originals must CRC-match what the
  // injecting peer generated — the whole pipeline (systematic seeding,
  // recoding, framing, transport, Gaussian elimination) is lossless.
  std::size_t checked = 0;
  for (std::size_t p = 0; p < cfg.num_peers; ++p) {
    PeerNode& peer = cluster.peer(p);
    for (std::uint32_t seq = 0; seq < cfg.segments_per_peer; ++seq) {
      const coding::SegmentId id{peer.config().node_id, seq};
      const auto* crcs = peer.original_crcs(id);
      ASSERT_NE(crcs, nullptr);
      for (std::size_t srv = 0; srv < cfg.num_servers; ++srv) {
        const auto* originals = cluster.server(srv).bank().originals(id);
        ASSERT_NE(originals, nullptr) << "server " << srv << " missing "
                                      << id.origin << "/" << id.seq;
        ASSERT_EQ(originals->size(), crcs->size());
        for (std::size_t k = 0; k < crcs->size(); ++k) {
          EXPECT_EQ(common::crc32((*originals)[k]), (*crcs)[k]);
          ++checked;
        }
      }
    }
  }
  EXPECT_EQ(checked, cfg.num_peers * cfg.segments_per_peer *
                         cfg.segment_size * cfg.num_servers);
}

TEST(NodeCluster, FixedSeedReproducesBitForBit) {
  const auto run = [] {
    LoopbackCluster cluster{small_cluster_config()};
    cluster.run_for(25.0);
    return std::array<std::uint64_t, 5>{
        cluster.segments_injected(),
        static_cast<std::uint64_t>(cluster.segments_decoded()),
        cluster.innovative_pulls(), cluster.pulls_sent(),
        cluster.gossip_sent()};
  };
  const auto first = run();
  EXPECT_EQ(first, run());

  auto other = small_cluster_config();
  other.seed = 12;
  other.net.seed = 12;
  LoopbackCluster cluster{other};
  cluster.run_for(25.0);
  // A different seed must actually change the trajectory.
  const std::array<std::uint64_t, 5> changed{
      cluster.segments_injected(),
      static_cast<std::uint64_t>(cluster.segments_decoded()),
      cluster.innovative_pulls(), cluster.pulls_sent(),
      cluster.gossip_sent()};
  EXPECT_NE(changed, first);
}

TEST(NodeCluster, SurvivesTtlChurnViaSourceRetention) {
  // Aggressive TTL: blocks decay fast enough that without source
  // retention segments die before collection. With it, the collection
  // still finishes — and the re-seed path demonstrably fired.
  auto cfg = small_cluster_config();
  cfg.gamma = 3.0;
  LoopbackCluster cluster{cfg};
  ASSERT_TRUE(cluster.run_to_completion(600.0))
      << "decoded " << cluster.segments_decoded() << "/"
      << cluster.segments_injected();
  std::uint64_t reseeds = 0;
  for (std::size_t p = 0; p < cfg.num_peers; ++p) {
    reseeds += cluster.peer(p).reseeds();
  }
  EXPECT_GT(reseeds, 0U);
}

TEST(NodeCluster, UnionRecoveryUnderLinkFaults) {
  // Per-send loss and adversarial chunking: frame reassembly and the
  // redundancy of gossip+retention must still get every segment to at
  // least one server (strict every-server convergence relies on the
  // lossless server-server forwarding links, so only the union is
  // guaranteed here).
  auto cfg = small_cluster_config();
  cfg.net.drop_probability = 0.05;
  cfg.net.chunk_bytes = 7;
  cfg.net.latency_jitter = 0.002;
  LoopbackCluster cluster{cfg};
  double t = 0.0;
  do {
    cluster.run_for(5.0);
    t += 5.0;
  } while (t < 600.0 &&
           (cluster.segments_injected() < 6U * 3U ||
            cluster.segments_decoded() < cluster.segments_injected()));
  EXPECT_EQ(cluster.segments_injected(), 6U * 3U);
  EXPECT_EQ(cluster.segments_decoded(), cluster.segments_injected());
  EXPECT_GT(cluster.net().drops(), 0U);
}

TEST(NodeCluster, DropOnAckPurgesDecodedSegments) {
  auto cfg = small_cluster_config();
  cfg.drop_on_ack = true;
  LoopbackCluster cluster{cfg};
  ASSERT_TRUE(cluster.run_to_completion(300.0));
  // Every injected segment ends up ACKed at every peer (full mesh,
  // lossless links), so with drop_on_ack every buffered block has been
  // purged once in-flight ACKs drain.
  cluster.run_for(5.0);
  EXPECT_EQ(cluster.total_buffered_blocks(), 0U);
}

// --- direct two-node protocol behaviors ------------------------------------

struct TwoNodes {
  net::LoopbackNet net{[] {
    net::LoopbackNet::Options o;
    o.latency = 0.001;
    return o;
  }()};
  net::LoopbackNet::Endpoint& a{net.create_endpoint()};
  net::LoopbackNet::Endpoint& b{net.create_endpoint()};
};

NodeConfig peer_config(std::uint32_t id) {
  NodeConfig cfg;
  cfg.node_id = id;
  cfg.segment_size = 4;
  cfg.buffer_cap = 16;
  cfg.lambda = 0.0;  // quiescent unless a test arms processes
  cfg.mu = 0.0;
  cfg.gamma = 1.0;
  cfg.seed = id;
  return cfg;
}

TEST(NodeCluster, TelemetryDoesNotPerturbDeterminism) {
  // Attaching a metrics registry and a trace sink must not change one
  // bit of the run: all instrumentation is pull-based or passive.
  const auto run = [](bool instrumented) {
    obs::MetricsRegistry reg;
    std::vector<proto::TraceEvent> events;
    LoopbackCluster cluster{small_cluster_config(),
                            instrumented ? &reg : nullptr};
    if (instrumented) {
      cluster.set_trace_sink(
          [&events](const proto::TraceEvent& e) { events.push_back(e); });
    }
    cluster.run_for(25.0);
    return std::array<std::uint64_t, 5>{
        cluster.segments_injected(),
        static_cast<std::uint64_t>(cluster.segments_decoded()),
        cluster.innovative_pulls(), cluster.pulls_sent(),
        cluster.gossip_sent()};
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(NodeCluster, LatencyHistogramsPopulatedByCollection) {
  obs::MetricsRegistry reg;
  LoopbackCluster cluster{small_cluster_config(), &reg};
  ASSERT_TRUE(cluster.run_to_completion(300.0));
  const double t = cluster.now();
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& rtt = cluster.server(i).pull_rtt();
    // Every answered pull recorded an RTT sample.
    EXPECT_GE(rtt.count(), cluster.server(i).pull_replies());
    EXPECT_GT(rtt.quantile_seconds(0.5), 0.0);
    EXPECT_LE(rtt.max_seconds(), t);
    // RTT over the loopback is at least the two-way link latency.
    EXPECT_GE(rtt.quantile_seconds(0.5),
              2.0 * cluster.config().net.latency - 1e-9);

    const auto& dl = cluster.server(i).decode_latency();
    EXPECT_EQ(dl.count(), cluster.server(i).segments_decoded());
    EXPECT_GT(dl.quantile_seconds(0.5), 0.0);
    EXPECT_LE(dl.max_seconds(), t);
  }
  // The registry sees the same histograms under the per-server prefix.
  ASSERT_NE(reg.find_latency("server0.pull_rtt"), nullptr);
  EXPECT_EQ(reg.find_latency("server0.pull_rtt")->count(),
            cluster.server(0).pull_rtt().count());
}

TEST(NodeCluster, HandshakeAndWireErrorCountersExported) {
  obs::MetricsRegistry reg;
  const auto cfg = small_cluster_config();
  LoopbackCluster cluster{cfg, &reg};
  cluster.run_for(5.0);
  // Full mesh: every peer handshakes with every other node; both ends
  // count, so the cluster-wide total is twice the edge count.
  std::uint64_t handshakes = 0;
  for (std::size_t i = 0; i < cfg.num_peers; ++i) {
    handshakes += cluster.peer(i).handshakes_ok();
    EXPECT_EQ(cluster.peer(i).decode_errors(), 0U);
    EXPECT_EQ(
        cluster.peer(i).decode_errors_by(wire::DecodeStatus::kBadCrc), 0U);
  }
  for (std::size_t i = 0; i < cfg.num_servers; ++i) {
    handshakes += cluster.server(i).handshakes_ok();
  }
  const std::size_t n = cfg.num_peers + cfg.num_servers;
  EXPECT_EQ(handshakes, n * (n - 1));
  // Roster occupancy gauges reflect the full mesh.
  EXPECT_DOUBLE_EQ(reg.find_gauge("peer1.peer_sessions")->value(),
                   static_cast<double>(cfg.num_peers - 1));
  EXPECT_DOUBLE_EQ(reg.find_gauge("peer1.server_sessions")->value(),
                   static_cast<double>(cfg.num_servers));
  EXPECT_DOUBLE_EQ(reg.find_gauge("peer1.wire_err.bad-crc")->value(), 0.0);
}

TEST(NodeCluster, TraceSinkSeesProtocolLifecycle) {
  obs::MetricsRegistry reg;
  std::vector<proto::TraceEvent> events;
  LoopbackCluster cluster{small_cluster_config(), &reg};
  cluster.set_trace_sink(
      [&events](const proto::TraceEvent& e) { events.push_back(e); });
  ASSERT_TRUE(cluster.run_to_completion(300.0));

  std::uint64_t injects = 0;
  std::uint64_t decodes = 0;
  std::uint64_t gossips = 0;
  std::uint64_t pulls = 0;
  std::uint64_t innovative = 0;
  double prev = 0.0;
  for (const auto& e : events) {
    EXPECT_GE(e.at, prev);  // single virtual clock: nondecreasing
    prev = e.at;
    switch (e.kind) {
      case proto::TraceEventKind::kSegmentInjected: ++injects; break;
      case proto::TraceEventKind::kSegmentDecoded: ++decodes; break;
      case proto::TraceEventKind::kGossipSent: ++gossips; break;
      case proto::TraceEventKind::kServerPull:
        ++pulls;
        innovative += e.aux;
        break;
      default: break;
    }
  }
  EXPECT_EQ(injects, cluster.segments_injected());
  // Each server traces its own decode of each segment.
  EXPECT_EQ(decodes, cluster.segments_injected() * 2U);
  EXPECT_EQ(gossips, cluster.gossip_sent());
  EXPECT_EQ(innovative, cluster.innovative_pulls());
  EXPECT_LE(pulls, cluster.pulls_sent());  // empty replies don't trace
}

TEST(NodeProtocol, HandshakeEstablishesRosters) {
  TwoNodes t;
  PeerNode peer{peer_config(1), t.a, t.net.timers()};
  ServerNode server{[] {
    auto cfg = peer_config(0x80000001U);
    cfg.buffer_cap = 4;
    return cfg;
  }(), t.b, t.net.timers()};
  t.net.connect(t.a.id(), t.b.id());
  t.net.run_for(0.1);
  EXPECT_EQ(peer.server_session_count(), 1U);
  EXPECT_EQ(peer.peer_session_count(), 0U);
  EXPECT_EQ(server.peer_session_count(), 1U);
  EXPECT_GE(peer.frames_sent(), 1U);     // its HELLO
  EXPECT_GE(peer.frames_received(), 1U); // the server's HELLO
}

/// A raw endpoint handler that ignores everything — lets tests inject
/// arbitrary bytes at a live node.
class SilentHandler final : public net::TransportHandler {
 public:
  void on_peer_up(net::NodeId) override {}
  void on_peer_down(net::NodeId peer) override { downs.push_back(peer); }
  void on_bytes(net::NodeId, std::span<const std::uint8_t>) override {}
  std::vector<net::NodeId> downs;
};

TEST(NodeProtocol, GarbageBytesTerminateTheSession) {
  TwoNodes t;
  PeerNode peer{peer_config(1), t.a, t.net.timers()};
  SilentHandler raw;
  t.b.set_handler(&raw);
  t.net.connect(t.a.id(), t.b.id());
  t.net.run_for(0.1);
  const std::vector<std::uint8_t> junk{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01,
                                       0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                                       0x08, 0x09, 0x0A, 0x0B};
  t.b.send(t.a.id(), junk);
  t.net.run_for(0.1);
  EXPECT_EQ(peer.decode_errors(), 1U);
  EXPECT_EQ(peer.peer_session_count(), 0U);
  EXPECT_EQ(peer.server_session_count(), 0U);
  // The peer severed the link after the framing violation.
  ASSERT_EQ(raw.downs.size(), 1U);
}

TEST(NodeProtocol, VersionMismatchRejectedWithBye) {
  TwoNodes t;
  PeerNode peer{peer_config(1), t.a, t.net.timers()};
  SilentHandler raw;
  t.b.set_handler(&raw);
  t.net.connect(t.a.id(), t.b.id());
  t.net.run_for(0.1);
  wire::Hello hello;
  hello.role = wire::NodeRole::kPeer;
  hello.version_min = 9;  // disjoint from [1,1]
  hello.version_max = 12;
  hello.node_id = 2;
  hello.segment_size = 4;
  t.b.send(t.a.id(), wire::encoded_frame(wire::Message{hello}));
  t.net.run_for(0.1);
  EXPECT_EQ(peer.version_rejects(), 1U);
  EXPECT_EQ(peer.peer_session_count(), 0U);
  ASSERT_EQ(raw.downs.size(), 1U);
}

TEST(NodeProtocol, SegmentSizeMismatchRejected) {
  TwoNodes t;
  PeerNode peer{peer_config(1), t.a, t.net.timers()};
  SilentHandler raw;
  t.b.set_handler(&raw);
  t.net.connect(t.a.id(), t.b.id());
  t.net.run_for(0.1);
  wire::Hello hello;
  hello.role = wire::NodeRole::kPeer;
  hello.node_id = 2;
  hello.segment_size = 9;  // peer codes with s=4
  t.b.send(t.a.id(), wire::encoded_frame(wire::Message{hello}));
  t.net.run_for(0.1);
  EXPECT_EQ(peer.peer_session_count(), 0U);
  ASSERT_EQ(raw.downs.size(), 1U);
}

TEST(NodeProtocol, PullOnEmptyBufferAnswersWithoutBlock) {
  TwoNodes t;
  PeerNode peer{peer_config(1), t.a, t.net.timers()};
  ServerNode server{[] {
    auto cfg = peer_config(0x80000001U);
    cfg.buffer_cap = 4;
    cfg.pull_rate = 50.0;
    return cfg;
  }(), t.b, t.net.timers()};
  t.net.connect(t.a.id(), t.b.id());
  t.net.run_for(0.1);
  server.start();  // peer never injects: every pull reply is empty
  t.net.run_for(1.0);
  EXPECT_GT(peer.pull_empty_replies(), 0U);
  EXPECT_EQ(peer.pull_replies(), 0U);
  EXPECT_EQ(server.segments_decoded(), 0U);
  // Occupancy-aware pulls back off from a peer that reported empty, so
  // pulls are far fewer than rate × time would allow.
  EXPECT_LT(server.pulls_sent(), 25U);
}

}  // namespace
}  // namespace icollect::node
