/// Workload-generation tests: measurement models and arrival profiles.

#include <gtest/gtest.h>

#include "sim/random.h"
#include "workload/generators.h"

namespace icollect::workload {
namespace {

TEST(MeasurementModel, HealthyRangesAreSane) {
  sim::Rng rng{61};
  MeasurementModel m{7, 2};
  for (int i = 0; i < 500; ++i) {
    const StatsRecord r = m.sample(i * 0.1, rng);
    EXPECT_EQ(r.peer, 7u);
    EXPECT_EQ(r.channel_id, 2u);
    EXPECT_GE(r.buffer_level, 0.0F);
    EXPECT_LE(r.buffer_level, 30.0F);
    EXPECT_GE(r.playback_continuity, 0.0F);
    EXPECT_LE(r.playback_continuity, 1.0F);
    EXPECT_GE(r.loss_rate, 0.0F);
    EXPECT_LE(r.loss_rate, 1.0F);
    EXPECT_GE(r.download_rate_kbps, 0.0F);
    EXPECT_LE(r.rtt_ms, 2000.0F);
  }
}

TEST(MeasurementModel, HealthyPeerStaysHealthyOnAverage) {
  sim::Rng rng{62};
  MeasurementModel m{1};
  double continuity = 0.0;
  constexpr int kN = 400;
  for (int i = 0; i < kN; ++i) {
    continuity += m.sample(i * 0.1, rng).playback_continuity;
  }
  EXPECT_GT(continuity / kN, 0.9);
}

TEST(MeasurementModel, DegradingPeerCollapses) {
  sim::Rng rng{63};
  MeasurementModel m{1, 0, /*degrading=*/true};
  EXPECT_TRUE(m.degrading());
  StatsRecord last;
  for (int i = 0; i < 200; ++i) last = m.sample(i * 0.1, rng);
  EXPECT_LT(last.playback_continuity, 0.8F);
  EXPECT_GT(last.loss_rate, 0.1F);
  EXPECT_LT(last.buffer_level, 5.0F);
}

TEST(MeasurementModel, SwitchingRegimes) {
  sim::Rng rng{64};
  MeasurementModel m{1};
  for (int i = 0; i < 100; ++i) (void)m.sample(i * 0.1, rng);
  m.set_degrading(true);
  StatsRecord last;
  for (int i = 100; i < 300; ++i) last = m.sample(i * 0.1, rng);
  EXPECT_GT(last.loss_rate, 0.1F);
}

TEST(ConstantProfile, RateIsConstant) {
  const ConstantProfile p{8.0};
  EXPECT_DOUBLE_EQ(p.rate(0.0), 8.0);
  EXPECT_DOUBLE_EQ(p.rate(1e6), 8.0);
  EXPECT_DOUBLE_EQ(p.max_rate(), 8.0);
}

TEST(FlashCrowdProfile, BurstWindow) {
  const FlashCrowdProfile p{2.0, 10.0, 5.0, 8.0};
  EXPECT_DOUBLE_EQ(p.rate(4.9), 2.0);
  EXPECT_DOUBLE_EQ(p.rate(5.0), 20.0);
  EXPECT_DOUBLE_EQ(p.rate(7.9), 20.0);
  EXPECT_DOUBLE_EQ(p.rate(8.0), 2.0);
  EXPECT_DOUBLE_EQ(p.max_rate(), 20.0);
}

TEST(FlashCrowdProfile, InvalidParamsViolateContract) {
  EXPECT_THROW((FlashCrowdProfile{2.0, 0.5, 0.0, 1.0}),
               icollect::ContractViolation);
  EXPECT_THROW((FlashCrowdProfile{2.0, 2.0, 5.0, 5.0}),
               icollect::ContractViolation);
}

TEST(DiurnalProfile, OscillatesWithinBounds) {
  const DiurnalProfile p{10.0, 0.5, 24.0};
  double lo = 1e9;
  double hi = -1e9;
  for (double t = 0.0; t < 48.0; t += 0.25) {
    const double r = p.rate(t);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
    EXPECT_LE(r, p.max_rate() + 1e-12);
    EXPECT_GE(r, 10.0 * 0.5 - 1e-12);
  }
  EXPECT_NEAR(hi, 15.0, 0.05);
  EXPECT_NEAR(lo, 5.0, 0.05);
}

TEST(NextArrival, ConstantProfileMatchesExponential) {
  sim::Rng rng{65};
  const ConstantProfile p{5.0};
  double t = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double next = next_arrival(p, t, rng);
    ASSERT_GT(next, t);
    t = next;
  }
  // kN arrivals at rate 5 take ≈ kN/5 time.
  EXPECT_NEAR(t, kN / 5.0, kN / 5.0 * 0.05);
}

TEST(NextArrival, ThinningTracksBurst) {
  sim::Rng rng{66};
  const FlashCrowdProfile p{1.0, 20.0, 10.0, 11.0};
  // Count arrivals in [0,10) (rate 1) vs [10,11) (rate 20).
  int before = 0;
  int burst = 0;
  double t = 0.0;
  while (t < 12.0) {
    t = next_arrival(p, t, rng);
    if (t < 10.0) {
      ++before;
    } else if (t < 11.0) {
      ++burst;
    }
  }
  EXPECT_NEAR(before, 10, 12);  // ~Poisson(10)
  EXPECT_NEAR(burst, 20, 18);   // ~Poisson(20)
  EXPECT_GT(burst, before / 2);
}

}  // namespace
}  // namespace icollect::workload
