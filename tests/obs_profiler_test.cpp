/// \file obs_profiler_test.cpp
/// Profiler: scope nesting (inclusive totals, depth bookkeeping), the
/// null-timer no-op contract, find-or-create cells, table/json output,
/// and deterministic timing through an injected ClockSource.

#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/clock.h"

namespace {

using icollect::obs::Profiler;
using icollect::obs::ProfScope;

void spin() {
  // A little real work so elapsed time is strictly positive on any clock.
  volatile unsigned x = 0;
  for (unsigned i = 0; i < 50000; ++i) x += i;
}

TEST(Profiler, TimerFindOrCreateIsStable) {
  Profiler prof;
  auto& a = prof.timer("net.gossip");
  auto& b = prof.timer("net.gossip");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "net.gossip");
  EXPECT_EQ(prof.timers().size(), 1U);
}

TEST(Profiler, ScopeRecordsOneSample) {
  Profiler prof;
  auto& t = prof.timer("work");
  {
    const ProfScope scope{&t};
    spin();
  }
  EXPECT_EQ(t.stat().count, 1U);
  EXPECT_GT(t.stat().total_ns, 0U);
  EXPECT_EQ(t.stat().max_ns, t.stat().total_ns);  // single sample
  EXPECT_DOUBLE_EQ(t.stat().mean_ns(),
                   static_cast<double>(t.stat().total_ns));
}

TEST(Profiler, NestedScopesAreInclusiveAndDepthBalances) {
  Profiler prof;
  auto& outer = prof.timer("outer");
  auto& inner = prof.timer("inner");
  EXPECT_EQ(prof.depth(), 0);
  {
    const ProfScope o{&outer};
    EXPECT_EQ(prof.depth(), 1);
    spin();
    {
      const ProfScope i{&inner};
      EXPECT_EQ(prof.depth(), 2);
      spin();
    }
    EXPECT_EQ(prof.depth(), 1);
  }
  EXPECT_EQ(prof.depth(), 0);
  EXPECT_EQ(outer.stat().count, 1U);
  EXPECT_EQ(inner.stat().count, 1U);
  // Outer totals include the inner scope's time.
  EXPECT_GE(outer.stat().total_ns, inner.stat().total_ns);
}

TEST(Profiler, NullTimerScopeIsNoOp) {
  Profiler prof;
  prof.timer("untouched");
  {
    const ProfScope scope{nullptr};
    EXPECT_EQ(prof.depth(), 0);
  }
  EXPECT_EQ(prof.timer("untouched").stat().count, 0U);
}

TEST(Profiler, TableListsEveryScope) {
  Profiler prof;
  {
    const ProfScope a{&prof.timer("net.inject")};
    spin();
  }
  {
    const ProfScope b{&prof.timer("net.decode")};
    spin();
  }
  const std::string table = prof.table();
  EXPECT_NE(table.find("net.inject"), std::string::npos) << table;
  EXPECT_NE(table.find("net.decode"), std::string::npos) << table;
  EXPECT_NE(table.find("count"), std::string::npos) << table;
}

TEST(Profiler, JsonHasStatsPerScope) {
  Profiler prof;
  {
    const ProfScope a{&prof.timer("evt")};
    spin();
  }
  const std::string json = prof.json();
  EXPECT_NE(json.find("\"evt\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_ns\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"max_ns\""), std::string::npos) << json;
}

TEST(Profiler, ManualClockMakesTimingDeterministic) {
  // With an injected clock, profiled durations are exact — no spin
  // loops, no flaky thresholds.
  Profiler prof;
  icollect::obs::ManualClock clock;
  prof.set_clock(&clock);
  auto& t = prof.timer("step");
  {
    const ProfScope scope{&t};
    clock.advance(0.002);  // 2ms
  }
  EXPECT_EQ(t.stat().count, 1U);
  EXPECT_EQ(t.stat().total_ns, 2'000'000U);
  EXPECT_EQ(t.stat().max_ns, 2'000'000U);
  {
    const ProfScope scope{&t};
    clock.advance(0.001);
  }
  EXPECT_EQ(t.stat().count, 2U);
  EXPECT_EQ(t.stat().total_ns, 3'000'000U);
  EXPECT_EQ(t.stat().max_ns, 2'000'000U);

  // Detaching the clock falls back to the wall clock; samples still
  // accumulate (elapsed may legitimately round to 0ns).
  prof.set_clock(nullptr);
  {
    const ProfScope scope{&t};
    spin();
  }
  EXPECT_EQ(t.stat().count, 3U);
}

TEST(Profiler, ResetClearsStatsKeepsCells) {
  Profiler prof;
  auto& t = prof.timer("evt");
  {
    const ProfScope a{&t};
    spin();
  }
  prof.reset();
  EXPECT_EQ(t.stat().count, 0U);
  EXPECT_EQ(t.stat().total_ns, 0U);
  EXPECT_EQ(prof.timers().size(), 1U);
}

}  // namespace
