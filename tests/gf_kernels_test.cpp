/// Differential validation of the GF(2^8) kernel engine: every kernel
/// table the CPU supports (scalar, ssse3, avx2) must agree bit-for-bit
/// with a byte-at-a-time oracle built on GF256::mul, across odd lengths,
/// unaligned offsets and degenerate multipliers. Also pins the
/// zero-allocation contract of the steady-state decode path.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "coding/decoder.h"
#include "coding/encoder.h"
#include "coding/segment_buffer.h"
#include "gf/gf256.h"
#include "gf/kernels.h"
#include "sim/random.h"

// --- global allocation counter (for the zero-allocation tests) ----------
//
// Replacing ::operator new is the only way to observe allocations made
// deep inside the decode path. Counting is gated so gtest's own
// bookkeeping outside the measured region is ignored.

namespace {
std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_alloc_count{0};

void note_alloc() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
}
}  // namespace

// The replacement operator new allocates with std::malloc /
// std::aligned_alloc, so releasing with std::free is correct; GCC's
// pairing heuristic can't see that and warns at inlined call sites.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  note_alloc();
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  note_alloc();
  const auto a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) / a * a;
  void* p = std::aligned_alloc(a, rounded ? rounded : a);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace icollect;
using gf::Element;
using gf::Kernels;

/// Byte-at-a-time oracle: dst ^= c * src via the carry-less field mul.
void oracle_add_scaled(Element* dst, const Element* src, Element c,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = gf::GF256::add(dst[i], gf::GF256::mul(c, src[i]));
  }
}

std::vector<Kernels::Kind> supported_kinds() {
  std::vector<Kernels::Kind> kinds{Kernels::Kind::kScalar};
  if (Kernels::supported(Kernels::Kind::kSsse3)) {
    kinds.push_back(Kernels::Kind::kSsse3);
  }
  if (Kernels::supported(Kernels::Kind::kAvx2)) {
    kinds.push_back(Kernels::Kind::kAvx2);
  }
  return kinds;
}

const gf::KernelTable& table_for(Kernels::Kind kind) {
  EXPECT_TRUE(Kernels::select(kind));
  const gf::KernelTable& t = Kernels::active();
  // Restore the default so other tests see the auto-dispatched kernels.
  Kernels::select(Kernels::Kind::kAuto);
  return t;
}

// Lengths chosen to cross every vector-width boundary (16/32/64) in both
// directions, plus empty, single-byte and odd straddles.
const std::size_t kLengths[] = {0,  1,  2,   3,   7,   15,  16,  17,
                                31, 32, 33,  48,  63,  64,  65,  100,
                                127, 128, 129, 255, 256, 257, 1024, 1025};

// Start offsets that break 16/32-byte alignment of the working pointers.
const std::size_t kOffsets[] = {0, 1, 3, 13};

TEST(GfKernels, ScalarAlwaysSupported) {
  EXPECT_TRUE(Kernels::supported(Kernels::Kind::kScalar));
  EXPECT_TRUE(Kernels::supported(Kernels::Kind::kAuto));
  EXPECT_STREQ(Kernels::name(Kernels::Kind::kScalar), "scalar");
}

TEST(GfKernels, SelectByNameRoundTrip) {
  EXPECT_FALSE(Kernels::select_by_name("neon"));
  EXPECT_FALSE(Kernels::select_by_name(""));
  ASSERT_TRUE(Kernels::select_by_name("scalar"));
  EXPECT_STREQ(Kernels::active().name, "scalar");
  ASSERT_TRUE(Kernels::select_by_name("auto"));
  EXPECT_STREQ(Kernels::active().name, Kernels::name(Kernels::best()));
}

TEST(GfKernels, AddScaledMatchesOracleEverywhere) {
  sim::Rng rng{11};
  for (const auto kind : supported_kinds()) {
    const gf::KernelTable& t = table_for(kind);
    for (const std::size_t n : kLengths) {
      for (const std::size_t off : kOffsets) {
        std::vector<Element> dst(off + n + 8), src(off + n + 8);
        rng.fill_gf(dst);
        rng.fill_gf(src);
        for (const Element c :
             {Element{0}, Element{1}, rng.gf_element(), Element{255}}) {
          std::vector<Element> expect = dst;
          oracle_add_scaled(expect.data() + off, src.data() + off, c, n);
          std::vector<Element> got = dst;
          t.add_scaled(got.data() + off, src.data() + off, c, n);
          ASSERT_EQ(got, expect)
              << t.name << " add_scaled n=" << n << " off=" << off
              << " c=" << static_cast<int>(c);
        }
      }
    }
  }
}

TEST(GfKernels, ScaleAssignMatchesOracleEverywhere) {
  sim::Rng rng{12};
  for (const auto kind : supported_kinds()) {
    const gf::KernelTable& t = table_for(kind);
    for (const std::size_t n : kLengths) {
      for (const std::size_t off : kOffsets) {
        std::vector<Element> base(off + n + 8);
        rng.fill_gf(base);
        for (const Element c :
             {Element{0}, Element{1}, Element{2}, rng.gf_element()}) {
          std::vector<Element> expect = base;
          for (std::size_t i = 0; i < n; ++i) {
            expect[off + i] = gf::GF256::mul(c, expect[off + i]);
          }
          std::vector<Element> got = base;
          t.scale_assign(got.data() + off, c, n);
          ASSERT_EQ(got, expect)
              << t.name << " scale_assign n=" << n << " off=" << off
              << " c=" << static_cast<int>(c);
        }
      }
    }
  }
}

TEST(GfKernels, AddAssignMatchesOracleEverywhere) {
  sim::Rng rng{13};
  for (const auto kind : supported_kinds()) {
    const gf::KernelTable& t = table_for(kind);
    for (const std::size_t n : kLengths) {
      for (const std::size_t off : kOffsets) {
        std::vector<Element> dst(off + n + 8), src(off + n + 8);
        rng.fill_gf(dst);
        rng.fill_gf(src);
        std::vector<Element> expect = dst;
        for (std::size_t i = 0; i < n; ++i) {
          expect[off + i] = gf::GF256::add(expect[off + i], src[off + i]);
        }
        std::vector<Element> got = dst;
        t.add_assign(got.data() + off, src.data() + off, n);
        ASSERT_EQ(got, expect)
            << t.name << " add_assign n=" << n << " off=" << off;
      }
    }
  }
}

TEST(GfKernels, DotMatchesOracleEverywhere) {
  sim::Rng rng{14};
  for (const auto kind : supported_kinds()) {
    const gf::KernelTable& t = table_for(kind);
    for (const std::size_t n : kLengths) {
      for (const std::size_t off : kOffsets) {
        std::vector<Element> a(off + n + 8), b(off + n + 8);
        rng.fill_gf(a);
        rng.fill_gf(b);
        Element expect = 0;
        for (std::size_t i = 0; i < n; ++i) {
          expect = gf::GF256::add(expect,
                                  gf::GF256::mul(a[off + i], b[off + i]));
        }
        ASSERT_EQ(t.dot(a.data() + off, b.data() + off, n), expect)
            << t.name << " dot n=" << n << " off=" << off;
      }
    }
  }
}

TEST(GfKernels, KernelsAgreePairwiseOnRandomStreams) {
  // Cross-kernel agreement on longer random streams: the property the
  // simulation's determinism guarantee rests on.
  sim::Rng rng{15};
  const auto kinds = supported_kinds();
  for (int round = 0; round < 16; ++round) {
    const std::size_t n = 1 + rng.uniform_index(2048);
    std::vector<Element> dst(n), src(n);
    rng.fill_gf(dst);
    rng.fill_gf(src);
    const Element c = rng.gf_element();
    std::vector<std::vector<Element>> outs;
    for (const auto kind : kinds) {
      const gf::KernelTable& t = table_for(kind);
      std::vector<Element> work = dst;
      t.add_scaled(work.data(), src.data(), c, n);
      t.scale_assign(work.data(), c, n);
      t.add_assign(work.data(), src.data(), n);
      outs.push_back(std::move(work));
    }
    for (std::size_t k = 1; k < outs.size(); ++k) {
      ASSERT_EQ(outs[k], outs[0])
          << "kernel " << Kernels::name(kinds[k]) << " diverged (n=" << n
          << ", c=" << static_cast<int>(c) << ")";
    }
  }
}

// --- zero-allocation decode path ----------------------------------------

TEST(GfKernels, DecoderAddIsAllocationFreeInSteadyState) {
  constexpr std::size_t s = 16;
  constexpr std::size_t payload = 256;
  sim::Rng rng{21};
  std::vector<std::vector<std::uint8_t>> originals(s);
  for (auto& blk : originals) {
    blk.resize(payload);
    rng.fill_gf(blk);
  }
  coding::SegmentEncoder enc{coding::SegmentId{1, 1}, originals};
  coding::Decoder dec{coding::SegmentId{1, 1}, s, payload};

  // Pre-generate every block outside the measured region; the decoder's
  // own buffers are pre-sized at construction.
  std::vector<coding::CodedBlock> blocks;
  for (std::size_t i = 0; i < s + 8; ++i) blocks.push_back(enc.encode(rng));

  g_alloc_count.store(0);
  g_counting.store(true);
  for (const auto& b : blocks) dec.add(b);  // innovative and redundant adds
  g_counting.store(false);

  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "Decoder::add allocated in steady state";
  ASSERT_TRUE(dec.complete());
  for (std::size_t k = 0; k < s; ++k) {
    const auto got = dec.original(k);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), originals[k].begin(),
                           originals[k].end()));
  }
}

TEST(GfKernels, RecodeIntoIsAllocationFreeOnceWarm) {
  constexpr std::size_t s = 8;
  constexpr std::size_t payload = 128;
  sim::Rng rng{22};
  std::vector<std::vector<std::uint8_t>> originals(s);
  for (auto& blk : originals) {
    blk.resize(payload);
    rng.fill_gf(blk);
  }
  coding::SegmentEncoder enc{coding::SegmentId{2, 2}, originals};
  coding::SegmentBuffer buf{coding::SegmentId{2, 2}, s};
  for (std::size_t i = 0; i < s; ++i) buf.add(i + 1, enc.encode(rng));

  coding::CodedBlock scratch;
  buf.recode_into(scratch, rng);  // warm: buffers grow to full size here

  g_alloc_count.store(0);
  g_counting.store(true);
  for (int i = 0; i < 32; ++i) buf.recode_into(scratch, rng);
  g_counting.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "SegmentBuffer::recode_into allocated after warm-up";
  EXPECT_FALSE(scratch.is_degenerate());
}

}  // namespace
