/// BatchDecoder tests, including cross-validation against the
/// progressive Decoder (two independent elimination paths must agree on
/// rank, decodability and the recovered payloads).

#include <gtest/gtest.h>

#include <stdexcept>

#include "coding/batch_decoder.h"
#include "coding/decoder.h"
#include "coding/encoder.h"
#include "sim/random.h"

namespace icollect::coding {
namespace {

std::vector<std::vector<std::uint8_t>> originals(std::size_t s,
                                                 std::size_t bytes,
                                                 sim::Rng& rng) {
  std::vector<std::vector<std::uint8_t>> v(s);
  for (auto& b : v) {
    b.resize(bytes);
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.gf_element());
  }
  return v;
}

TEST(BatchDecoder, EmptyBatch) {
  EXPECT_EQ(BatchDecoder::rank({}), 0u);
  EXPECT_FALSE(BatchDecoder::decodable({}));
  EXPECT_FALSE(BatchDecoder::decode({}).has_value());
}

TEST(BatchDecoder, FullRankBatchDecodes) {
  sim::Rng rng{201};
  const auto orig = originals(6, 20, rng);
  const SegmentEncoder enc{{1, 0}, orig};
  std::vector<CodedBlock> blocks;
  for (int i = 0; i < 9; ++i) blocks.push_back(enc.encode(rng));
  EXPECT_TRUE(BatchDecoder::decodable(blocks));
  const auto decoded = BatchDecoder::decode(blocks);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, orig);
}

TEST(BatchDecoder, RankDeficientBatchFails) {
  sim::Rng rng{202};
  const auto orig = originals(5, 8, rng);
  const SegmentEncoder enc{{1, 0}, orig};
  std::vector<CodedBlock> blocks;
  for (int i = 0; i < 3; ++i) blocks.push_back(enc.encode(rng));
  EXPECT_FALSE(BatchDecoder::decodable(blocks));
  EXPECT_FALSE(BatchDecoder::decode(blocks).has_value());
  // Duplicating existing blocks must not unlock it.
  blocks.push_back(blocks.front());
  blocks.push_back(blocks.back());
  EXPECT_FALSE(BatchDecoder::decode(blocks).has_value());
}

TEST(BatchDecoder, MixedSegmentsRejected) {
  sim::Rng rng{203};
  const SegmentEncoder a{{1, 0}, originals(3, 4, rng)};
  const SegmentEncoder b{{2, 0}, originals(3, 4, rng)};
  std::vector<CodedBlock> blocks{a.encode(rng), b.encode(rng)};
  EXPECT_THROW((void)BatchDecoder::rank(blocks), std::invalid_argument);
}

TEST(BatchDecoder, InconsistentPayloadsRejected) {
  sim::Rng rng{204};
  const SegmentEncoder enc{{1, 0}, originals(3, 4, rng)};
  std::vector<CodedBlock> blocks{enc.encode(rng), enc.encode(rng),
                                 enc.encode(rng)};
  blocks[1].payload.resize(2);
  EXPECT_THROW((void)BatchDecoder::decode(blocks), std::invalid_argument);
}

TEST(BatchDecoder, AgreesWithProgressiveDecoderOnRank) {
  sim::Rng rng{205};
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t s = 2 + rng.uniform_index(10);
    const SegmentEncoder enc{{7, 7}, originals(s, 8, rng)};
    std::vector<CodedBlock> blocks;
    const std::size_t n = 1 + rng.uniform_index(2 * s);
    // A mix of fresh and duplicated blocks to create rank deficiencies.
    for (std::size_t i = 0; i < n; ++i) {
      if (!blocks.empty() && rng.bernoulli(0.3)) {
        blocks.push_back(blocks[rng.uniform_index(blocks.size())]);
      } else {
        blocks.push_back(enc.encode(rng));
      }
    }
    Decoder progressive{{7, 7}, s, 8};
    for (const auto& b : blocks) progressive.add(b);
    ASSERT_EQ(BatchDecoder::rank(blocks), progressive.rank())
        << "trial " << trial << " s=" << s << " n=" << n;
    ASSERT_EQ(BatchDecoder::decodable(blocks), progressive.complete());
    if (progressive.complete()) {
      const auto batch = BatchDecoder::decode(blocks);
      ASSERT_TRUE(batch.has_value());
      ASSERT_EQ(*batch, progressive.originals());
    }
  }
}

TEST(BatchDecoder, SystematicSubsetSuffices) {
  sim::Rng rng{206};
  const auto orig = originals(4, 12, rng);
  const SegmentEncoder enc{{3, 1}, orig};
  std::vector<CodedBlock> blocks;
  for (std::size_t k = 0; k < 4; ++k) blocks.push_back(enc.systematic_block(k));
  EXPECT_EQ(BatchDecoder::rank(blocks), 4u);
  EXPECT_EQ(*BatchDecoder::decode(blocks), orig);
}

}  // namespace
}  // namespace icollect::coding
