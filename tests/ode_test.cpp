/// Fluid-model tests: the RK4 kernel on known systems, the Sec. 3 ODE
/// systems against Theorem 1's closed forms, internal consistency
/// (mass conservation, Σ_j m_i^j = w_i), and Theorem 2's s = 1 formula.

#include <gtest/gtest.h>

#include <cmath>

#include "ode/closed_form.h"
#include "ode/indirect_ode.h"
#include "ode/rk4.h"

namespace icollect::ode {
namespace {

TEST(Rk4, ExponentialDecayExact) {
  // y' = -y  →  y(t) = e^-t. RK4 local error O(dt^5).
  State y{1.0};
  const Derivative f = [](const State& yy, State& dy) { dy[0] = -yy[0]; };
  for (int i = 0; i < 1000; ++i) rk4_step(f, y, 1e-3);
  EXPECT_NEAR(y[0], std::exp(-1.0), 1e-9);
}

TEST(Rk4, HarmonicOscillatorEnergyStable) {
  // x'' = -x as a 2d system; RK4 keeps amplitude to high accuracy.
  State y{1.0, 0.0};
  const Derivative f = [](const State& yy, State& dy) {
    dy[0] = yy[1];
    dy[1] = -yy[0];
  };
  const double dt = 1e-3;
  for (int i = 0; i < 6283; ++i) rk4_step(f, y, dt);  // ≈ one period
  EXPECT_NEAR(y[0], 1.0, 1e-5);
  EXPECT_NEAR(y[1], 0.0, 1e-3);
}

TEST(Rk4, SteadyStateOfLinearRelaxation) {
  // y' = 3 - y converges to 3.
  State y{0.0};
  const Derivative f = [](const State& yy, State& dy) {
    dy[0] = 3.0 - yy[0];
  };
  SteadyStateOptions opt;
  opt.dt = 1e-2;
  opt.tol = 1e-10;
  const auto res = integrate_to_steady_state(f, y, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(y[0], 3.0, 1e-8);
  EXPECT_GT(res.steps, 0u);
}

TEST(Rk4, DivergenceTriggersStepRefinement) {
  // A stiff decay that explodes at dt=1 (|1 - λdt| > 1 for λ=3, dt=1)
  // must still converge after halvings.
  State y{1.0};
  const Derivative f = [](const State& yy, State& dy) {
    dy[0] = -3.0 * yy[0] * std::abs(yy[0]);  // superlinear blow-up if unstable
  };
  SteadyStateOptions opt;
  opt.dt = 5.0;  // absurdly large on purpose
  opt.t_max = 50.0;
  opt.tol = 1e-8;
  const auto res = integrate_to_steady_state(f, y, opt);
  EXPECT_TRUE(std::isfinite(y[0]));
  // Exact solution y(t) = 1/(1 + 3t): y(50) ≈ 0.0066 (polynomial decay).
  EXPECT_NEAR(y[0], 1.0 / 151.0, 2e-3);
  (void)res;
}

TEST(Rk4, MaxNormAndNonfinite) {
  EXPECT_DOUBLE_EQ(max_norm({-3.0, 2.0}), 3.0);
  EXPECT_FALSE(has_nonfinite({1.0, 2.0}));
  EXPECT_TRUE(has_nonfinite({1.0, std::nan("")}));
}

TEST(ClosedForm, Z0FixedPointResidual) {
  for (const double mu : {1.0, 5.0, 10.0}) {
    for (const double lambda : {0.5, 8.0, 20.0}) {
      const double z0 = closed_form::steady_z0(lambda, mu, 1.0);
      const double residual =
          std::abs(z0 - std::exp(-((1.0 - z0) * mu + lambda)));
      EXPECT_LT(residual, 1e-10) << "mu=" << mu << " lambda=" << lambda;
      EXPECT_GT(z0, 0.0);
      EXPECT_LT(z0, 1.0);
    }
  }
}

TEST(ClosedForm, OverheadBelowTheoremOneBound) {
  for (const double mu : {2.0, 10.0, 18.0}) {
    const double overhead = closed_form::storage_overhead(8.0, mu, 1.0);
    EXPECT_GT(overhead, 0.0);
    EXPECT_LT(overhead, mu);  // Theorem 1: overhead < μ/γ with γ=1
  }
}

TEST(ClosedForm, SteadyDegreesArePoisson) {
  const auto z = closed_form::steady_peer_degrees(20.0, 10.0, 1.0, 120);
  double sum = 0.0;
  double mean = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    EXPECT_GE(z[i], 0.0);
    sum += z[i];
    mean += static_cast<double>(i) * z[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(mean, closed_form::rho(20.0, 10.0, 1.0), 1e-6);
  // Poisson ratio property: z_{i+1}/z_i = ρ/(i+1).
  const double rho = closed_form::rho(20.0, 10.0, 1.0);
  for (std::size_t i = 10; i < 40; ++i) {
    EXPECT_NEAR(z[i + 1] / z[i], rho / static_cast<double>(i + 1), 1e-9);
  }
}

TEST(ClosedForm, NoncodingThroughputBounds) {
  for (const double c : {2.0, 5.0, 10.0}) {
    const double thr =
        closed_form::normalized_throughput_noncoding(20.0, 10.0, 1.0, c);
    EXPECT_GE(thr, 0.0);
    EXPECT_LE(thr, std::min(c / 20.0, 1.0) + 1e-9);
  }
}

TEST(ClosedForm, NoncodingThroughputMonotoneInCapacity) {
  double prev = 0.0;
  for (const double c : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const double thr =
        closed_form::normalized_throughput_noncoding(20.0, 10.0, 1.0, c);
    EXPECT_GE(thr, prev - 1e-12);
    prev = thr;
  }
}

TEST(OdeParams, AutoSizingAndValidation) {
  OdeParams p;
  p.lambda = 20.0;
  p.mu = 10.0;
  p.gamma = 1.0;
  p.s = 10;
  const OdeParams r = p.resolved();
  EXPECT_GT(r.B, 30u);     // must comfortably exceed ρ = 30
  EXPECT_GE(r.Imax, r.s);  // segment degrees start at s
  OdeParams bad = p;
  bad.gamma = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = p;
  bad.B = 5;  // < s
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(IndirectOde, StateLayoutIsABijection) {
  OdeParams p;
  p.s = 3;
  p.B = 20;
  p.Imax = 15;
  const IndirectOde sys{p};
  std::vector<bool> used(sys.dimension(), false);
  auto mark = [&](std::size_t idx) {
    ASSERT_LT(idx, used.size());
    ASSERT_FALSE(used[idx]);
    used[idx] = true;
  };
  for (std::size_t i = 0; i <= 20; ++i) mark(sys.z_index(i));
  for (std::size_t i = 1; i <= 15; ++i) mark(sys.w_index(i));
  for (std::size_t i = 1; i <= 15; ++i) {
    for (std::size_t j = 0; j <= 3; ++j) mark(sys.m_index(i, j));
  }
  for (const bool u : used) EXPECT_TRUE(u);
}

class OdeSteadyStateTest
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(OdeSteadyStateTest, TheoremOneAndConsistency) {
  const auto [c, s] = GetParam();
  OdeParams p;
  p.lambda = 20.0;
  p.mu = 10.0;
  p.gamma = 1.0;
  p.c = c;
  p.s = s;
  const IndirectOde sys{p};
  const OdeSolution sol = sys.solve();

  // z mass is conserved.
  double zsum = 0.0;
  for (const double zi : sol.z) zsum += zi;
  EXPECT_NEAR(zsum, 1.0, 1e-6);

  // Theorem 1: the mean ρ matches the closed-form fixed point for every
  // s. The full z law z̃_i = z̃_0 ρ^i/i! is exact for s = 1 (single-block
  // injection); batch injection (s ≥ 2) is over-dispersed relative to
  // Poisson — the theorem's law is the paper's large-B approximation —
  // so the law itself is only asserted in the non-coding case.
  const double rho = closed_form::rho(p.lambda, p.mu, p.gamma);
  EXPECT_NEAR(sol.e, rho, 0.02 * rho);
  if (s == 1) {
    EXPECT_NEAR(sol.z0, closed_form::steady_z0(p.lambda, p.mu, p.gamma),
                1e-4);
    const auto poisson = closed_form::steady_peer_degrees(
        p.lambda, p.mu, p.gamma, sol.params.B);
    for (std::size_t i = 0; i < 40 && i < poisson.size(); ++i) {
      EXPECT_NEAR(sol.z[i], poisson[i], 5e-3) << "i=" << i;
    }
  }

  // m rows must sum to w (the collection matrix partitions segments).
  EXPECT_LT(sol.m_w_consistency(), 1e-6);

  // Truncation guard: negligible mass at the boundary.
  EXPECT_LT(sol.tail_w, 1e-6);

  // Physical ranges.
  const double eta = sol.collection_efficiency();
  EXPECT_GE(eta, 0.0);
  EXPECT_LE(eta, 1.0);
  EXPECT_GE(sol.saved_blocks_per_peer(), 0.0);
  EXPECT_LE(sol.normalized_throughput(),
            std::min(p.c / p.lambda, 1.0) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    CapacityAndSegmentGrid, OdeSteadyStateTest,
    ::testing::Combine(::testing::Values(2.0, 5.0, 10.0),
                       ::testing::Values(std::size_t{1}, std::size_t{5},
                                         std::size_t{20})));

TEST(IndirectOde, NoncodingThroughputMatchesTheoremTwo) {
  // The m-system's throughput at s = 1 must agree with the θ₊ closed form.
  for (const double c : {2.0, 5.0}) {
    OdeParams p;
    p.lambda = 20.0;
    p.mu = 10.0;
    p.gamma = 1.0;
    p.c = c;
    p.s = 1;
    const OdeSolution sol = IndirectOde{p}.solve();
    const double closed =
        closed_form::normalized_throughput_noncoding(p.lambda, p.mu,
                                                     p.gamma, c);
    EXPECT_NEAR(sol.normalized_throughput(), closed, 0.02)
        << "c=" << c;
  }
}

TEST(IndirectOde, ThroughputIncreasesWithSegmentSize) {
  // The headline of Fig. 3.
  OdeParams p;
  p.lambda = 20.0;
  p.mu = 10.0;
  p.gamma = 1.0;
  p.c = 5.0;
  double prev = -1.0;
  for (const std::size_t s : {1ul, 2ul, 5ul, 10ul, 20ul}) {
    p.s = s;
    const double thr = IndirectOde{p}.solve().normalized_throughput();
    EXPECT_GE(thr, prev - 5e-3) << "s=" << s;
    prev = thr;
  }
  // And approaches the capacity line c/λ = 0.25.
  EXPECT_GT(prev, 0.24);
}

TEST(IndirectOde, SavedDataDecreasesWithSegmentSize) {
  // Fig. 6: larger s → more already reconstructed → less saved.
  OdeParams p;
  p.lambda = 20.0;
  p.mu = 10.0;
  p.gamma = 1.0;
  p.c = 5.0;
  double prev = 1e18;
  for (const std::size_t s : {1ul, 5ul, 20ul}) {
    p.s = s;
    const double saved = IndirectOde{p}.solve().saved_blocks_per_peer();
    EXPECT_LT(saved, prev + 1e-9) << "s=" << s;
    prev = saved;
  }
}

TEST(IndirectOde, ZeroCapacityCollectsNothing) {
  OdeParams p;
  p.lambda = 10.0;
  p.mu = 5.0;
  p.gamma = 1.0;
  p.c = 0.0;
  p.s = 4;
  const OdeSolution sol = IndirectOde{p}.solve();
  EXPECT_DOUBLE_EQ(sol.throughput_per_peer(), 0.0);
  EXPECT_NEAR(sol.e, closed_form::rho(p.lambda, p.mu, p.gamma),
              0.02 * sol.e + 1e-9);
}

TEST(IndirectOde, DerivativeIsMassConservingForZ) {
  OdeParams p;
  p.lambda = 8.0;
  p.mu = 6.0;
  p.gamma = 1.0;
  p.c = 3.0;
  p.s = 4;
  const IndirectOde sys{p};
  // From a perturbed state, Σ dz_i must be ~0 (z is a probability law).
  State y = sys.initial_state();
  y[sys.z_index(0)] = 0.4;
  y[sys.z_index(2)] = 0.3;
  y[sys.z_index(7)] = 0.3;
  y[sys.w_index(4)] = 0.5;
  y[sys.m_index(4, 0)] = 0.5;
  State dy(y.size());
  sys.derivative(y, dy);
  double dz_sum = 0.0;
  for (std::size_t i = 0; i <= sys.params().B; ++i) {
    dz_sum += dy[sys.z_index(i)];
  }
  EXPECT_NEAR(dz_sum, 0.0, 1e-12);
}

}  // namespace
}  // namespace icollect::ode
