/// \file epoll_reactor_test.cpp
/// The epoll reactor against real loopback sockets: the same transport
/// contract net_tcp_test pins down for the poll backend (connect /
/// bidirectional bytes / close propagation / backpressure / retry
/// exhaustion), plus what is reactor-specific — shard distribution,
/// buffer-pool reuse, batching counters, and the backend factory.
/// Handler callbacks run on the driving thread only, so the recording
/// handler needs no locks even though shards do the socket work.
///
/// On platforms without <sys/epoll.h> only the factory tests compile;
/// they pin the graceful-fallback behavior instead.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/stream_transport.h"
#include "net/transport.h"
#include "obs/metrics_registry.h"

#if defined(ICOLLECT_HAVE_EPOLL)
#include "net/epoll_reactor.h"
#endif

namespace icollect::net {
namespace {

TEST(StreamFactory, UnknownBackendThrows) {
  EXPECT_THROW((void)make_stream_transport("bogus", StreamOptions{}),
               std::invalid_argument);
}

TEST(StreamFactory, PollBackendAlwaysAvailable) {
  const auto t = make_stream_transport("poll", StreamOptions{});
  ASSERT_NE(t, nullptr);
  EXPECT_STREQ(t->backend_name(), "poll");
}

TEST(StreamFactory, AutoPicksEpollWhereAvailable) {
  const auto t = make_stream_transport("auto", StreamOptions{});
  ASSERT_NE(t, nullptr);
  if (epoll_backend_available()) {
    EXPECT_STREQ(t->backend_name(), "epoll");
  } else {
    EXPECT_STREQ(t->backend_name(), "poll");
  }
}

TEST(StreamFactory, EpollRequestHonoursAvailability) {
  if (epoll_backend_available()) {
    const auto t = make_stream_transport("epoll", StreamOptions{});
    ASSERT_NE(t, nullptr);
    EXPECT_STREQ(t->backend_name(), "epoll");
  } else {
    EXPECT_THROW((void)make_stream_transport("epoll", StreamOptions{}),
                 std::invalid_argument);
  }
}

#if defined(ICOLLECT_HAVE_EPOLL)

class RecordingHandler final : public TransportHandler {
 public:
  void on_peer_up(NodeId peer) override { ups.push_back(peer); }
  void on_peer_down(NodeId peer) override { downs.push_back(peer); }
  void on_bytes(NodeId peer, std::span<const std::uint8_t> bytes) override {
    auto& stream = received[peer];
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }

  std::vector<NodeId> ups;
  std::vector<NodeId> downs;
  std::unordered_map<NodeId, std::vector<std::uint8_t>> received;
};

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

/// Pump both transports until `done` or the wall-clock deadline. The
/// shards work in the background; poll_once only drains their events.
template <typename Pred>
bool pump(StreamTransport& a, StreamTransport& b, Pred done,
          double timeout = 10.0) {
  const double t0 = a.now();
  while (a.now() - t0 < timeout) {
    a.poll_once(0.01);
    b.poll_once(0.01);
    if (done()) return true;
  }
  return done();
}

TEST(EpollReactor, ConnectExchangeClose) {
  EpollReactor server;
  EpollReactor client;
  RecordingHandler hs;
  RecordingHandler hc;
  server.set_handler(&hs);
  client.set_handler(&hc);

  const std::uint16_t port = server.listen("127.0.0.1", 0);
  ASSERT_GT(port, 0);
  const NodeId conn = client.connect("127.0.0.1", port);
  ASSERT_TRUE(pump(server, client, [&] {
    return !hs.ups.empty() && !hc.ups.empty();
  })) << "connection did not establish";

  ASSERT_TRUE(client.send(conn, bytes_of("ping")));
  ASSERT_TRUE(pump(server, client, [&] {
    return hs.received[hs.ups[0]].size() >= 4;
  }));
  EXPECT_EQ(hs.received[hs.ups[0]], bytes_of("ping"));

  ASSERT_TRUE(server.send(hs.ups[0], bytes_of("pong!")));
  ASSERT_TRUE(pump(server, client, [&] {
    return hc.received[conn].size() >= 5;
  }));
  EXPECT_EQ(hc.received[conn], bytes_of("pong!"));
  EXPECT_EQ(server.accepts(), 1U);
  EXPECT_EQ(client.connects_ok(), 1U);
  EXPECT_GE(client.bytes_sent(), 4U);
  EXPECT_GE(server.bytes_received(), 4U);

  // Closing on one side surfaces on_peer_down on the other — and
  // close_peer itself notifies synchronously like the poll backend.
  client.close_peer(conn);
  EXPECT_EQ(hc.downs.size(), 1U);
  EXPECT_EQ(hc.downs[0], conn);
  ASSERT_TRUE(pump(server, client, [&] { return !hs.downs.empty(); }));
  EXPECT_EQ(hs.downs[0], hs.ups[0]);
}

TEST(EpollReactor, LargeTransferRecyclesBuffers) {
  // 1 MiB arrives intact through the pooled read path; afterwards the
  // pool must show reuse (reads outnumber distinct buffers by far).
  EpollReactor server;
  EpollReactor client;
  RecordingHandler hs;
  RecordingHandler hc;
  server.set_handler(&hs);
  client.set_handler(&hc);
  const std::uint16_t port = server.listen("127.0.0.1", 0);
  const NodeId conn = client.connect("127.0.0.1", port);
  ASSERT_TRUE(pump(server, client, [&] {
    return !hs.ups.empty() && !hc.ups.empty();
  }));

  std::vector<std::uint8_t> blob(1U << 20U);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::uint8_t>(i * 2654435761U >> 24U);
  }
  ASSERT_TRUE(client.send(conn, blob));
  ASSERT_TRUE(pump(server, client, [&] {
    return hs.received[hs.ups[0]].size() >= blob.size();
  }));
  EXPECT_EQ(hs.received[hs.ups[0]], blob);

  // The blob may drain inside one wakeup burst (all pool misses, the
  // releases land afterwards); a follow-up read must reuse one of the
  // now-idle buffers.
  ASSERT_TRUE(client.send(conn, bytes_of("warm")));
  ASSERT_TRUE(pump(server, client, [&] {
    return hs.received[hs.ups[0]].size() >= blob.size() + 4;
  }));
  const auto pool = server.pool().stats();
  EXPECT_GT(pool.hits, 0U) << "read buffers never recycled";
  EXPECT_GT(server.wakeups(), 0U);
  EXPECT_GE(server.events_dispatched(), server.wakeups());
  EXPECT_GT(client.writev_calls(), 0U);
  EXPECT_GE(client.batched_bytes(), blob.size());
}

TEST(EpollReactor, BackpressureRefusesOverCap) {
  StreamOptions opts;
  opts.send_queue_cap_bytes = 64;
  EpollReactor client{opts};
  EpollReactor server;
  RecordingHandler hs;
  RecordingHandler hc;
  server.set_handler(&hs);
  client.set_handler(&hc);
  const std::uint16_t port = server.listen("127.0.0.1", 0);
  const NodeId conn = client.connect("127.0.0.1", port);
  ASSERT_TRUE(pump(server, client, [&] {
    return !hs.ups.empty() && !hc.ups.empty();
  }));

  // Flood without pumping the client: once >64 bytes sit unsent, send()
  // must refuse rather than queue unboundedly. The shard may drain some
  // of the early frames, so refusal is eventually-guaranteed, not
  // instant — keep pushing until it happens.
  const std::vector<std::uint8_t> chunk(48, 0x5A);
  bool refused = false;
  for (int i = 0; i < 10000 && !refused; ++i) {
    refused = !client.send(conn, chunk);
  }
  EXPECT_TRUE(refused) << "cap never enforced";
  EXPECT_GT(client.backpressure_refusals(), 0U);
}

TEST(EpollReactor, ConnectToDeadPortFailsAfterRetries) {
  StreamOptions opts;
  opts.connect_timeout = 0.2;
  opts.connect_retries = 1;
  opts.retry_backoff = 0.05;
  EpollReactor client{opts};
  RecordingHandler hc;
  client.set_handler(&hc);

  // Bind-then-close: the port was just proven free, so connecting gets
  // a fast RST rather than a timeout.
  std::uint16_t dead_port = 0;
  {
    EpollReactor probe;
    dead_port = probe.listen("127.0.0.1", 0);
  }
  const NodeId conn = client.connect("127.0.0.1", dead_port);
  EXPECT_NE(conn, kInvalidNodeId);

  const double t0 = client.now();
  while (client.now() - t0 < 10.0 && hc.downs.empty()) {
    client.poll_once(0.01);
  }
  ASSERT_EQ(hc.downs.size(), 1U);
  EXPECT_EQ(hc.downs[0], conn);
  EXPECT_TRUE(hc.ups.empty());
  EXPECT_EQ(client.connects_failed(), 1U);
  EXPECT_GE(client.connect_retries(), 1U);
}

TEST(EpollReactor, ConnectionsSpreadAcrossShards) {
  StreamOptions opts;
  opts.reactor_shards = 2;
  EpollReactor server{opts};
  EpollReactor client{opts};
  RecordingHandler hs;
  RecordingHandler hc;
  server.set_handler(&hs);
  client.set_handler(&hc);
  ASSERT_EQ(server.shard_count(), 2U);

  const std::uint16_t port = server.listen("127.0.0.1", 0);
  constexpr std::size_t kConns = 8;
  for (std::size_t i = 0; i < kConns; ++i) {
    ASSERT_NE(client.connect("127.0.0.1", port), kInvalidNodeId);
  }
  ASSERT_TRUE(pump(server, client, [&] {
    return hs.ups.size() >= kConns && hc.ups.size() >= kConns;
  }));

  EXPECT_EQ(server.open_connections(), kConns);
  const std::size_t s0 = server.shard_connections(0);
  const std::size_t s1 = server.shard_connections(1);
  EXPECT_EQ(s0 + s1, kConns);
  // id % nshards routing with sequential ids: an even split.
  EXPECT_GT(s0, 0U);
  EXPECT_GT(s1, 0U);
}

TEST(EpollReactor, AttachMetricsExportsReactorGauges) {
  EpollReactor server;
  EpollReactor client;
  RecordingHandler hs;
  RecordingHandler hc;
  server.set_handler(&hs);
  client.set_handler(&hc);
  const std::uint16_t port = server.listen("127.0.0.1", 0);
  const NodeId conn = client.connect("127.0.0.1", port);
  ASSERT_TRUE(pump(server, client, [&] {
    return !hs.ups.empty() && !hc.ups.empty();
  }));
  ASSERT_TRUE(client.send(conn, bytes_of("hello metrics")));
  ASSERT_TRUE(pump(server, client, [&] {
    return !hs.received.empty() && hs.received[hs.ups[0]].size() >= 13;
  }));

  obs::MetricsRegistry registry;
  server.attach_metrics(registry, "epoll.");
  for (const char* name :
       {"epoll.accepts", "epoll.bytes_in", "epoll.wakeups",
        "epoll.events_per_wakeup", "epoll.conns", "epoll.pool_hit_rate",
        "epoll.shards", "epoll.shard0.conns"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  const auto* conns = registry.find_gauge("epoll.conns");
  ASSERT_NE(conns, nullptr);
  EXPECT_DOUBLE_EQ(conns->value(), 1.0);
  const auto* accepts = registry.find_gauge("epoll.accepts");
  ASSERT_NE(accepts, nullptr);
  EXPECT_DOUBLE_EQ(accepts->value(), 1.0);
}

TEST(EpollReactor, SendToUnknownConnRefused) {
  EpollReactor t;
  RecordingHandler h;
  t.set_handler(&h);
  EXPECT_FALSE(t.send(NodeId{424242}, bytes_of("nope")));
}

#endif  // ICOLLECT_HAVE_EPOLL

}  // namespace
}  // namespace icollect::net
