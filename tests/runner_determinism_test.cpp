/// The replica engine's determinism contract: identical (seed, grid,
/// replicas) must yield byte-identical aggregates for ANY worker count,
/// and the seed tree must hand every replica its own stream. These are
/// the properties the sweep CLI's --jobs flag advertises; break either
/// and parallel results silently stop being reproducible.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "runner/seed_sequence.h"
#include "runner/sweep_runner.h"
#include "runner/thread_pool.h"

namespace icollect::runner {
namespace {

// --- SeedSequence ------------------------------------------------------------

TEST(SeedSequence, IdenticalPathsYieldIdenticalSeeds) {
  const SeedSequence a{42};
  const SeedSequence b{42};
  EXPECT_EQ(a.state(), b.state());
  EXPECT_EQ(a.child(3).stream(7), b.child(3).stream(7));
  EXPECT_EQ(a.replica_seed(3, 7), b.child(3).stream(7));
}

TEST(SeedSequence, DistinctRootsDiverge) {
  EXPECT_NE(SeedSequence{1}.stream(0), SeedSequence{2}.stream(0));
  EXPECT_NE(SeedSequence{0}.state(), SeedSequence{1}.state());
}

TEST(SeedSequence, PathOrderMatters) {
  const SeedSequence root{99};
  EXPECT_NE(root.child(1).child(2).stream(0),
            root.child(2).child(1).stream(0));
}

TEST(SeedSequence, StreamDoesNotAliasChildState) {
  // stream(i) of a sequence must not equal the state of any nearby
  // derived sequence (the +1 offset in the index lane guards this).
  const SeedSequence root{7};
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_NE(root.stream(i), root.child(i).state());
    EXPECT_NE(root.stream(i), root.state());
  }
}

TEST(SeedSequence, NoCollisionsAcross10kStreams) {
  // 100 cells x 100 replicas — the scale of a big sweep. SplitMix64 is
  // bijective per lane, so any collision here is a construction bug,
  // not bad luck (birthday bound ~5e-12 for random 64-bit draws).
  const SeedSequence root{0x1CDC52008ULL};
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(10000);
  for (std::uint64_t cell = 0; cell < 100; ++cell) {
    for (std::uint64_t r = 0; r < 100; ++r) {
      seen.insert(root.replica_seed(cell, r));
    }
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(SeedSequence, ReplicasWithinCellAreDistinct) {
  const SeedSequence root{123};
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t r = 0; r < 64; ++r) {
    seen.insert(root.replica_seed(0, r));
  }
  EXPECT_EQ(seen.size(), 64u);
}

// --- ThreadPool --------------------------------------------------------------

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  constexpr std::size_t kCount = 257;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
  // The calling thread participates in parallel_for, so even a 1-worker
  // pool (the 1-core container case) makes progress.
  ThreadPool pool{1};
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // run_replica_reports inside SweepRunner tasks nests parallel_for;
  // the help-while-waiting loop must keep this live on any pool size.
  ThreadPool pool{2};
  std::atomic<int> inner{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 16);
}

TEST(ThreadPool, ResolveJobs) {
  EXPECT_EQ(ThreadPool::resolve_jobs(3), 3u);
  EXPECT_EQ(ThreadPool::resolve_jobs(1), 1u);
  EXPECT_GE(ThreadPool::resolve_jobs(0), 1u);
  EXPECT_GE(ThreadPool::resolve_jobs(-5), 1u);
}

TEST(ThreadPool, ZeroThreadRequestClampsToOne) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.size(), 1u);
}

// --- Engine determinism ------------------------------------------------------

std::vector<SweepCell> tiny_grid() {
  std::vector<SweepCell> cells;
  for (const std::size_t s : {1ul, 4ul}) {
    p2p::ProtocolConfig cfg;
    cfg.num_peers = 30;
    cfg.lambda = 10.0;
    cfg.mu = 5.0;
    cfg.gamma = 1.0;
    cfg.segment_size = s;
    cfg.buffer_cap = 60;
    cfg.num_servers = 2;
    cfg.set_normalized_capacity(3.0);
    cfg.fidelity = p2p::CollectionFidelity::kStateCounter;
    SweepCell cell;
    cell.label = "s=" + std::to_string(s);
    ReplicaPlan plan;
    plan.config = cfg;
    plan.warm = 2.0;
    plan.measure = 4.0;
    plan.replicas = 4;
    cell.plan = plan;
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::string sweep_bytes(std::size_t jobs) {
  ThreadPool pool{jobs};
  const SweepRunner runner{SeedSequence{2026}};
  const auto results = runner.run(tiny_grid(), pool);
  std::string bytes;
  for (const auto& r : results) {
    bytes += r.label;
    bytes += ':';
    bytes += r.aggregate.to_json();
    bytes += '\n';
  }
  return bytes;
}

TEST(EngineDeterminism, AggregateBytesIdenticalAcrossJobCounts) {
  // The acceptance criterion of the replica engine: --jobs must never
  // influence results. Compare full serialized aggregates byte for byte.
  const std::string j1 = sweep_bytes(1);
  const std::string j2 = sweep_bytes(2);
  const std::string j8 = sweep_bytes(8);
  EXPECT_FALSE(j1.empty());
  EXPECT_EQ(j1, j2);
  EXPECT_EQ(j1, j8);
}

TEST(EngineDeterminism, RepeatedRunsAreIdentical) {
  EXPECT_EQ(sweep_bytes(2), sweep_bytes(2));
}

TEST(EngineDeterminism, DistinctRootSeedsChangeResults) {
  ThreadPool pool{2};
  const auto a = SweepRunner{SeedSequence{1}}.run(tiny_grid(), pool);
  const auto b = SweepRunner{SeedSequence{2}}.run(tiny_grid(), pool);
  EXPECT_NE(a[0].aggregate.to_json(), b[0].aggregate.to_json());
}

TEST(EngineDeterminism, ReplicasAreDistinctTrajectories) {
  // If replicas shared a stream, the per-metric spread would collapse
  // to zero. Check a continuous metric has nonzero spread.
  ReplicaPlan plan = tiny_grid()[0].plan;
  ThreadPool pool{2};
  const auto reports =
      run_replica_reports(plan, SeedSequence{2026}, pool);
  ASSERT_EQ(reports.size(), plan.replicas);
  std::unordered_set<std::uint64_t> pulls;
  for (const auto& r : reports) pulls.insert(r.server_pulls);
  EXPECT_GT(pulls.size(), 1u)
      << "all replicas produced identical pull counts — shared stream?";
}

}  // namespace
}  // namespace icollect::runner
