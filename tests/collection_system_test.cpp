/// Facade tests: CollectionSystem configuration, reports, record
/// recovery, and ODE parameter mapping.

#include <gtest/gtest.h>

#include <set>

#include "core/collection_system.h"

namespace icollect {
namespace {

p2p::ProtocolConfig demo_config() {
  p2p::ProtocolConfig cfg;
  cfg.num_peers = 50;
  cfg.lambda = 8.0;
  cfg.segment_size = 4;
  cfg.mu = 6.0;
  cfg.gamma = 1.0;
  cfg.buffer_cap = 60;
  cfg.num_servers = 2;
  cfg.set_normalized_capacity(6.0);
  cfg.payload_bytes = 64;
  cfg.seed = 5;
  return cfg;
}

TEST(CollectionSystem, ReportFieldsAreCoherent) {
  CollectionSystem sys{demo_config()};
  sys.warm_up(5.0);
  sys.run(15.0);
  const CollectionReport r = sys.report();
  EXPECT_NEAR(r.measured_time, 15.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.normalized_capacity, 6.0);
  EXPECT_GT(r.segments_injected, 0u);
  EXPECT_GT(r.segments_decoded, 0u);
  EXPECT_GE(r.throughput, 0.0);
  EXPECT_LE(r.normalized_throughput, 1.0);
  EXPECT_LE(r.normalized_goodput, r.normalized_throughput + 0.05);
  EXPECT_GT(r.mean_blocks_per_peer, 0.0);
  // Theorem 1's bound is asymptotic; allow finite-N sampling slack.
  EXPECT_LT(r.storage_overhead, r.overhead_bound * 1.10);
  EXPECT_EQ(r.payload_crc_failures, 0u);
  EXPECT_GE(r.redundancy_fraction(), 0.0);
  EXPECT_LE(r.redundancy_fraction(), 1.0);
  EXPECT_EQ(r.capacity_bound, std::min(6.0 / 8.0, 1.0));
}

TEST(CollectionSystem, RecoveredRecordsAreValid) {
  CollectionSystem sys{demo_config()};
  sys.use_vital_statistics_payloads();
  sys.run(15.0);
  const auto records = sys.recovered_records();
  ASSERT_GT(records.size(), 0u);
  std::set<std::uint32_t> reporters;
  for (const auto& rec : records) {
    reporters.insert(rec.peer);
    EXPECT_GE(rec.timestamp, 0.0);
    EXPECT_LE(rec.timestamp, 15.0);
    EXPECT_GE(rec.playback_continuity, 0.0F);
    EXPECT_LE(rec.playback_continuity, 1.0F);
  }
  EXPECT_GT(reporters.size(), 5u);  // many distinct peers were collected
  EXPECT_EQ(sys.report().payload_crc_failures, 0u);
}

TEST(CollectionSystem, RecordsRequirePayloadBytes) {
  auto cfg = demo_config();
  cfg.payload_bytes = 0;
  CollectionSystem sys{cfg};
  EXPECT_THROW(sys.use_vital_statistics_payloads(), std::invalid_argument);
}

TEST(CollectionSystem, RecordsRequireRoomForOneRecord) {
  auto cfg = demo_config();
  cfg.segment_size = 1;
  cfg.payload_bytes = 16;  // 16 bytes < 4 + 48
  CollectionSystem sys{cfg};
  EXPECT_THROW(sys.use_vital_statistics_payloads(), std::invalid_argument);
}

TEST(CollectionSystem, WithoutRecordsRecoveredIsEmpty) {
  CollectionSystem sys{demo_config()};
  sys.run(5.0);
  EXPECT_TRUE(sys.recovered_records().empty());
}

TEST(CollectionSystem, StopInjectionFreezesInjection) {
  CollectionSystem sys{demo_config()};
  sys.run(5.0);
  sys.stop_injection();
  const auto injected = sys.report().segments_injected;
  sys.run(5.0);
  EXPECT_EQ(sys.report().segments_injected, injected);
}

TEST(CollectionSystem, OdeParamsMapping) {
  const auto cfg = demo_config();
  const ode::OdeParams p = CollectionSystem::ode_params(cfg);
  EXPECT_DOUBLE_EQ(p.lambda, cfg.lambda);
  EXPECT_DOUBLE_EQ(p.mu, cfg.mu);
  EXPECT_DOUBLE_EQ(p.gamma, cfg.gamma);
  EXPECT_DOUBLE_EQ(p.c, cfg.normalized_capacity());
  EXPECT_EQ(p.s, cfg.segment_size);
  EXPECT_EQ(p.B, cfg.buffer_cap);
}

TEST(CollectionSystem, AnalyzeProducesConvergedSolution) {
  const auto sol = CollectionSystem::analyze(demo_config());
  EXPECT_TRUE(sol.convergence.converged);
  EXPECT_GT(sol.rho(), 0.0);
  EXPECT_GT(sol.normalized_throughput(), 0.0);
}

TEST(CollectionSystem, InvalidConfigThrowsAtConstruction) {
  auto cfg = demo_config();
  cfg.num_peers = 1;
  EXPECT_THROW((CollectionSystem{cfg}), std::invalid_argument);
}

TEST(CollectionSystem, NegativeDurationViolatesContract) {
  CollectionSystem sys{demo_config()};
  EXPECT_THROW(sys.run(-1.0), ContractViolation);
  EXPECT_THROW(sys.warm_up(-1.0), ContractViolation);
}

}  // namespace
}  // namespace icollect
