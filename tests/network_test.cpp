/// Integration tests of the indirect-collection engine: conservation
/// laws, protocol invariants, fidelity modes, churn, topologies,
/// determinism, and agreement with Theorem 1.

#include <gtest/gtest.h>

#include <unordered_map>

#include "ode/closed_form.h"
#include "p2p/network.h"

namespace icollect::p2p {
namespace {

ProtocolConfig small_config() {
  ProtocolConfig cfg;
  cfg.num_peers = 60;
  cfg.lambda = 10.0;
  cfg.segment_size = 5;
  cfg.mu = 6.0;
  cfg.gamma = 1.0;
  cfg.buffer_cap = 60;
  cfg.num_servers = 3;
  cfg.set_normalized_capacity(3.0);
  cfg.seed = 7;
  return cfg;
}

/// Recompute per-segment degrees straight from the peer buffers and check
/// the registry agrees; also verify buffer caps and occupancy counters.
void check_structural_invariants(const Network& net) {
  const auto& cfg = net.config();
  std::unordered_map<coding::SegmentId, std::size_t> degrees;
  std::size_t total_blocks = 0;
  for (std::size_t slot = 0; slot < cfg.num_peers; ++slot) {
    const Peer& p = net.peer(slot);
    ASSERT_LE(p.buffer().size(), cfg.buffer_cap);
    total_blocks += p.buffer().size();
    for (const auto& seg : p.buffer().segments()) {
      const auto* sb = p.buffer().find(seg);
      ASSERT_NE(sb, nullptr);
      ASSERT_GT(sb->block_count(), 0u);
      ASSERT_LE(sb->rank(), sb->segment_size());
      degrees[seg] += sb->block_count();
    }
  }
  const auto& registry = net.segment_registry();
  std::size_t registry_live = 0;
  for (const auto& [id, info] : registry) {
    if (info.degree > 0) {
      ++registry_live;
      const auto it = degrees.find(id);
      ASSERT_NE(it, degrees.end()) << id.to_string();
      ASSERT_EQ(info.degree, it->second) << id.to_string();
    } else {
      ASSERT_FALSE(degrees.contains(id)) << id.to_string();
    }
  }
  ASSERT_EQ(registry_live, degrees.size());
  ASSERT_EQ(registry_live, net.live_segment_count());
  // Instantaneous TimeWeighted value mirrors the true block count.
  ASSERT_DOUBLE_EQ(net.metrics().total_blocks.value(),
                   static_cast<double>(total_blocks));
}

/// Every injected block is eventually accounted for exactly once.
void check_block_conservation(const Network& net) {
  const auto& m = net.metrics();
  std::size_t in_network = 0;
  for (std::size_t slot = 0; slot < net.config().num_peers; ++slot) {
    in_network += net.peer(slot).buffer().size();
  }
  const std::uint64_t created = m.blocks_injected + m.gossip_sent;
  const std::uint64_t gone = m.ttl_expirations + m.blocks_lost_to_churn;
  EXPECT_EQ(created, gone + in_network);
}

TEST(PeerStruct, IdentityFields) {
  common::Rng rng{1};
  proto::PeerCore::Params params;
  params.segment_size = 4;
  params.buffer_cap = 16;
  const Peer p{3, params, 42, rng};
  EXPECT_EQ(p.slot, 3u);
  EXPECT_EQ(p.origin(), 42u);
  EXPECT_EQ(p.incarnation, 0u);
  EXPECT_EQ(p.buffer().capacity(), 16u);
}

TEST(Network, StructuralInvariantsAfterRun) {
  Network net{small_config()};
  net.run_until(10.0);
  check_structural_invariants(net);
  check_block_conservation(net);
}

TEST(Network, InvariantsHoldUnderChurn) {
  ProtocolConfig cfg = small_config();
  cfg.churn.enabled = true;
  cfg.churn.mean_lifetime = 2.0;
  Network net{cfg};
  net.run_until(12.0);
  check_structural_invariants(net);
  check_block_conservation(net);
  EXPECT_GT(net.metrics().peers_departed, 0u);
  EXPECT_GT(net.metrics().blocks_lost_to_churn, 0u);
}

TEST(Network, InvariantsHoldOnSparseTopology) {
  ProtocolConfig cfg = small_config();
  cfg.topology = TopologyKind::kErdosRenyi;
  cfg.mean_degree = 8;
  Network net{cfg};
  net.run_until(10.0);
  check_structural_invariants(net);
  check_block_conservation(net);
  EXPECT_GT(net.metrics().gossip_sent, 0u);
}

TEST(Network, CounterFidelityRuns) {
  ProtocolConfig cfg = small_config();
  cfg.fidelity = CollectionFidelity::kStateCounter;
  Network net{cfg};
  net.warm_up(6.0);
  net.run_until(20.0);
  check_structural_invariants(net);
  EXPECT_GT(net.servers().segments_decoded(), 0u);
  EXPECT_GT(net.throughput(), 0.0);
}

TEST(Network, MeanOccupancyMatchesTheoremOne) {
  // Theorem 1: ρ = (1 − z̃_0)μ/γ + λ/γ, independent of s.
  ProtocolConfig cfg = small_config();
  cfg.num_peers = 120;
  cfg.seed = 19;
  Network net{cfg};
  net.warm_up(12.0);
  net.run_until(net.now() + 25.0);
  const double rho_theory =
      ode::closed_form::rho(cfg.lambda, cfg.mu, cfg.gamma);
  EXPECT_NEAR(net.mean_blocks_per_peer(), rho_theory, 0.06 * rho_theory);
  const double overhead_bound = cfg.mu / cfg.gamma;
  EXPECT_LT(net.storage_overhead(), overhead_bound * 1.05);
}

TEST(Network, EmptyPeerFractionMatchesClosedForm) {
  ProtocolConfig cfg = small_config();
  cfg.lambda = 1.0;  // sparse regime where z0 is substantial
  cfg.mu = 1.0;
  cfg.segment_size = 1;
  cfg.num_peers = 150;
  cfg.set_normalized_capacity(0.5);
  cfg.seed = 23;
  Network net{cfg};
  net.warm_up(15.0);
  net.run_until(net.now() + 40.0);
  const double z0_theory =
      ode::closed_form::steady_z0(cfg.lambda, cfg.mu, cfg.gamma);
  EXPECT_NEAR(net.empty_peer_fraction(), z0_theory, 0.05);
}

TEST(Network, ThroughputBoundedByCapacityAndDemand) {
  ProtocolConfig cfg = small_config();
  cfg.fidelity = CollectionFidelity::kStateCounter;
  Network net{cfg};
  net.warm_up(8.0);
  net.run_until(net.now() + 25.0);
  const double c = cfg.normalized_capacity();
  // Session throughput can exceed neither server capacity nor demand.
  EXPECT_LE(net.throughput(),
            c * static_cast<double>(cfg.num_peers) * 1.05);
  EXPECT_LE(net.normalized_throughput(), 1.0);
  EXPECT_GE(net.normalized_throughput(), 0.0);
  EXPECT_LE(net.goodput(), net.throughput() * 1.05);
}

TEST(Network, PayloadsSurviveEndToEnd) {
  ProtocolConfig cfg = small_config();
  cfg.payload_bytes = 32;
  cfg.segment_size = 4;
  cfg.set_normalized_capacity(8.0);  // ample capacity → many decodes
  Network net{cfg};
  net.run_until(15.0);
  EXPECT_GT(net.servers().segments_decoded(), 0u);
  EXPECT_EQ(net.metrics().payload_crc_failures, 0u);
}

TEST(Network, DeterministicGivenSeed) {
  const ProtocolConfig cfg = small_config();
  Network a{cfg};
  Network b{cfg};
  a.run_until(8.0);
  b.run_until(8.0);
  EXPECT_EQ(a.metrics().segments_injected, b.metrics().segments_injected);
  EXPECT_EQ(a.metrics().gossip_sent, b.metrics().gossip_sent);
  EXPECT_EQ(a.metrics().ttl_expirations, b.metrics().ttl_expirations);
  EXPECT_EQ(a.servers().pulls(), b.servers().pulls());
  EXPECT_EQ(a.servers().segments_decoded(), b.servers().segments_decoded());
}

TEST(Network, DifferentSeedsDiverge) {
  ProtocolConfig cfg = small_config();
  Network a{cfg};
  cfg.seed = 8888;
  Network b{cfg};
  a.run_until(8.0);
  b.run_until(8.0);
  EXPECT_NE(a.metrics().gossip_sent, b.metrics().gossip_sent);
}

TEST(Network, StopInjectionWithoutGossipDrainsByTtl) {
  // With gossip off, every block has one Exp(γ) life and the network
  // empties once injection ends.
  ProtocolConfig cfg = small_config();
  cfg.mu = 0.0;
  cfg.set_normalized_capacity(2.0);
  Network net{cfg};
  net.run_until(6.0);
  net.stop_injection();
  const auto injected = net.metrics().segments_injected;
  net.run_until(30.0);
  EXPECT_EQ(net.metrics().segments_injected, injected);
  EXPECT_EQ(net.live_segment_count(), 0u);
  for (std::size_t slot = 0; slot < cfg.num_peers; ++slot) {
    EXPECT_TRUE(net.peer(slot).buffer().empty());
  }
}

TEST(Network, BufferedDataPersistsForDelayedDelivery) {
  // The Theorem 4 property: when the reporting streams end, gossip keeps
  // replicating the surviving segments (replication at μ outruns the TTL
  // at γ), so the servers continue to collect *after* injection stops —
  // the "delayed fashion" delivery the paper is built around.
  ProtocolConfig cfg = small_config();
  cfg.fidelity = CollectionFidelity::kStateCounter;
  cfg.set_normalized_capacity(1.0);  // scarce: backlog builds up
  Network net{cfg};
  net.run_until(8.0);
  net.stop_injection();
  const auto decoded_at_stop = net.servers().segments_decoded();
  net.run_until(20.0);
  EXPECT_GT(net.live_segment_count(), 0u);  // data still buffered
  EXPECT_GT(net.servers().segments_decoded(), decoded_at_stop)
      << "servers must keep harvesting the buffered backlog";
}

TEST(Network, SavedDataCensusConsistency) {
  ProtocolConfig cfg = small_config();
  Network net{cfg};
  net.run_until(8.0);
  const SavedDataCensus census = net.saved_data_census();
  EXPECT_LE(census.decodable_by_rank, census.decodable_by_degree);
  EXPECT_LE(census.undecoded_live_segments, census.live_segments);
  EXPECT_LE(census.decodable_by_degree, census.undecoded_live_segments);
  EXPECT_DOUBLE_EQ(
      census.saved_original_blocks_degree,
      static_cast<double>(census.decodable_by_degree * cfg.segment_size));
  EXPECT_EQ(census.live_segments, net.live_segment_count());
  EXPECT_GE(census.pending_innovative_blocks, 0.0);
}

TEST(Network, DegreeDistributionIsPoissonShaped) {
  ProtocolConfig cfg = small_config();
  cfg.num_peers = 200;
  cfg.seed = 99;
  Network net{cfg};
  net.run_until(20.0);
  const auto counts = net.peer_degree_counts(cfg.buffer_cap);
  std::size_t total = 0;
  double mean = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    total += counts[i];
    mean += static_cast<double>(i) * static_cast<double>(counts[i]);
  }
  EXPECT_EQ(total, cfg.num_peers);
  mean /= static_cast<double>(cfg.num_peers);
  const double rho_theory =
      ode::closed_form::rho(cfg.lambda, cfg.mu, cfg.gamma);
  EXPECT_NEAR(mean, rho_theory, 0.2 * rho_theory);  // instantaneous snapshot
}

TEST(Network, InjectionBlockedWhenBufferTight) {
  ProtocolConfig cfg = small_config();
  cfg.buffer_cap = cfg.segment_size;  // room for exactly one segment
  Network net{cfg};
  net.run_until(10.0);
  EXPECT_GT(net.metrics().injection_blocked, 0u);
  check_structural_invariants(net);
}

TEST(Network, GossipSkipsWhenNoEligibleTarget) {
  // Tiny population where everyone quickly holds what everyone else has.
  ProtocolConfig cfg = small_config();
  cfg.num_peers = 2;
  cfg.lambda = 1.0;
  cfg.segment_size = 1;
  cfg.mu = 50.0;  // hammer gossip so ineligible targets occur
  cfg.buffer_cap = 4;
  Network net{cfg};
  net.run_until(20.0);
  EXPECT_GT(net.metrics().gossip_no_target +
                net.metrics().gossip_idle,
            0u);
  check_structural_invariants(net);
}

TEST(Network, InvalidConfigRejected) {
  ProtocolConfig cfg = small_config();
  cfg.buffer_cap = 2;
  cfg.segment_size = 5;  // B < s
  EXPECT_THROW((Network{cfg}), std::invalid_argument);
}

}  // namespace
}  // namespace icollect::p2p
