/// Tests for the key=value configuration parser behind tools/icollect_sim.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/config_args.h"

namespace icollect {
namespace {

std::vector<std::string_view> args(std::initializer_list<const char*> list) {
  return {list.begin(), list.end()};
}

TEST(ConfigArgs, DefaultsSurviveEmptyArgs) {
  p2p::ProtocolConfig cfg;
  const auto before = cfg;
  const auto a = args({});
  apply_config_args(cfg, a);
  EXPECT_EQ(cfg.num_peers, before.num_peers);
  EXPECT_EQ(cfg.segment_size, before.segment_size);
}

TEST(ConfigArgs, ParsesEveryKey) {
  p2p::ProtocolConfig cfg;
  const auto a = args({"peers=300", "lambda=12.5", "s=15", "mu=7.5",
                       "gamma=0.5", "buffer=200", "servers=8", "c=3.5",
                       "payload=64", "seed=77", "degree=16",
                       "topology=erdos-renyi", "churn=2.5",
                       "fidelity=real-coding"});
  apply_config_args(cfg, a);
  EXPECT_EQ(cfg.num_peers, 300u);
  EXPECT_DOUBLE_EQ(cfg.lambda, 12.5);
  EXPECT_EQ(cfg.segment_size, 15u);
  EXPECT_DOUBLE_EQ(cfg.mu, 7.5);
  EXPECT_DOUBLE_EQ(cfg.gamma, 0.5);
  EXPECT_EQ(cfg.buffer_cap, 200u);
  EXPECT_EQ(cfg.num_servers, 8u);
  EXPECT_NEAR(cfg.normalized_capacity(), 3.5, 1e-12);
  EXPECT_EQ(cfg.payload_bytes, 64u);
  EXPECT_EQ(cfg.seed, 77u);
  EXPECT_EQ(cfg.mean_degree, 16u);
  EXPECT_EQ(cfg.topology, p2p::TopologyKind::kErdosRenyi);
  EXPECT_TRUE(cfg.churn.enabled);
  EXPECT_DOUBLE_EQ(cfg.churn.mean_lifetime, 2.5);
  EXPECT_EQ(cfg.fidelity, p2p::CollectionFidelity::kRealCoding);
}

TEST(ConfigArgs, LaterTokensWin) {
  p2p::ProtocolConfig cfg;
  const auto a = args({"peers=100", "peers=250"});
  apply_config_args(cfg, a);
  EXPECT_EQ(cfg.num_peers, 250u);
}

TEST(ConfigArgs, ChurnZeroDisables) {
  p2p::ProtocolConfig cfg;
  cfg.churn.enabled = true;
  cfg.churn.mean_lifetime = 3.0;
  const auto a = args({"churn=0"});
  apply_config_args(cfg, a);
  EXPECT_FALSE(cfg.churn.enabled);
}

TEST(ConfigArgs, CapacityAfterPeersOrderMatters) {
  // c= computes server_rate from the *current* peer count, so peers
  // must come first for the intended normalized capacity.
  p2p::ProtocolConfig cfg;
  auto a = args({"peers=400", "c=5"});
  apply_config_args(cfg, a);
  EXPECT_NEAR(cfg.normalized_capacity(), 5.0, 1e-12);
}

TEST(ConfigArgs, MalformedTokensRejected) {
  p2p::ProtocolConfig cfg;
  for (const char* bad :
       {"peers", "=5", "peers=abc", "lambda=1x", "nope=3",
        "topology=ring", "fidelity=magic"}) {
    p2p::ProtocolConfig fresh;
    const auto a = args({bad});
    EXPECT_THROW(apply_config_args(fresh, a), std::invalid_argument)
        << bad;
  }
  (void)cfg;
}

// A rejected invocation must tell the operator *what* was wrong, not
// just that something was: the exception text has to name the offending
// key and value so a typo in a 12-token sweep command is findable.
TEST(ConfigArgs, UnknownKeyErrorNamesTheKey) {
  p2p::ProtocolConfig cfg;
  const auto a = args({"peesr=300"});
  try {
    apply_config_args(cfg, a);
    FAIL() << "unknown key accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("peesr"), std::string::npos)
        << e.what();
  }
}

TEST(ConfigArgs, MalformedNumericErrorNamesKeyAndValue) {
  p2p::ProtocolConfig cfg;
  const auto a = args({"lambda=fast"});
  try {
    apply_config_args(cfg, a);
    FAIL() << "malformed numeric accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what{e.what()};
    EXPECT_NE(what.find("lambda"), std::string::npos) << what;
    EXPECT_NE(what.find("fast"), std::string::npos) << what;
  }
}

TEST(ConfigArgs, MissingValueErrorShowsTheToken) {
  p2p::ProtocolConfig cfg;
  for (const char* bad : {"peers", "=5"}) {
    p2p::ProtocolConfig fresh;
    const auto a = args({bad});
    try {
      apply_config_args(fresh, a);
      FAIL() << "token without key=value shape accepted: " << bad;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string{e.what()}.find("key=value"), std::string::npos)
          << e.what();
    }
  }
  (void)cfg;
}

TEST(ConfigArgs, EmptyValueRejected) {
  p2p::ProtocolConfig cfg;
  const auto a = args({"peers="});
  EXPECT_THROW(apply_config_args(cfg, a), std::invalid_argument);
}

TEST(ConfigArgs, NegativeRateRejectedByValidation) {
  p2p::ProtocolConfig cfg;
  const auto a = args({"lambda=-3"});
  EXPECT_THROW(apply_config_args(cfg, a), std::invalid_argument);
}

TEST(ConfigArgs, FinalValidationRuns) {
  p2p::ProtocolConfig cfg;
  const auto a = args({"buffer=2", "s=10"});  // B < s
  EXPECT_THROW(apply_config_args(cfg, a), std::invalid_argument);
}

TEST(ConfigArgs, StateCounterPayloadConflictCaught) {
  p2p::ProtocolConfig cfg;
  const auto a = args({"fidelity=state-counter", "payload=64"});
  EXPECT_THROW(apply_config_args(cfg, a), std::invalid_argument);
}

TEST(ConfigArgs, ParseArgvHelper) {
  const char* argv[] = {"prog", "peers=123", "s=4"};
  const auto cfg = parse_config_args(3, argv);
  EXPECT_EQ(cfg.num_peers, 123u);
  EXPECT_EQ(cfg.segment_size, 4u);
}

TEST(ConfigArgs, DescribeMentionsKeyFields) {
  p2p::ProtocolConfig cfg;
  cfg.num_peers = 42;
  cfg.churn.enabled = true;
  cfg.churn.mean_lifetime = 1.5;
  const std::string text = describe(cfg);
  EXPECT_NE(text.find("N=42"), std::string::npos);
  EXPECT_NE(text.find("churn"), std::string::npos);
  EXPECT_NE(text.find("fidelity"), std::string::npos);
}

TEST(ConfigArgs, HelpTextIsNonEmpty) {
  EXPECT_NE(config_args_help(), nullptr);
  EXPECT_GT(std::string_view{config_args_help()}.size(), 50u);
}

}  // namespace
}  // namespace icollect
