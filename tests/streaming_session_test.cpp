/// Streaming-session simulator tests: chunk propagation, measured
/// metrics, capacity starvation, throttling, and the record feed.

#include <gtest/gtest.h>

#include "workload/streaming_session.h"

namespace icollect::workload {
namespace {

StreamingConfig healthy_config() {
  StreamingConfig cfg;
  cfg.num_peers = 40;
  cfg.chunk_rate = 10.0;
  cfg.partners = 6;
  cfg.request_rate = 40.0;
  cfg.upload_chunks = 15.0;
  cfg.source_upload_chunks = 40.0;
  cfg.startup_delay = 2.0;
  cfg.window = 80;
  cfg.seed = 5;
  return cfg;
}

TEST(StreamingConfig, Validation) {
  StreamingConfig cfg = healthy_config();
  EXPECT_NO_THROW(cfg.validate());
  cfg.partners = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = healthy_config();
  cfg.partners = cfg.num_peers;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = healthy_config();
  cfg.chunk_rate = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = healthy_config();
  cfg.window = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(StreamingSession, HealthySwarmPlaysSmoothly) {
  StreamingSession session{healthy_config()};
  session.run_until(20.0);
  EXPECT_NEAR(static_cast<double>(session.chunks_emitted()), 200.0, 1.0);
  EXPECT_GT(session.total_transfers(), 0u);
  EXPECT_GT(session.mean_continuity(), 0.90);
}

TEST(StreamingSession, StarvedUplinksDegradePlayback) {
  StreamingConfig cfg = healthy_config();
  cfg.upload_chunks = 1.0;         // peers can barely serve
  cfg.source_upload_chunks = 6.0;  // source can't cover 40 peers alone
  StreamingSession session{cfg};
  session.run_until(20.0);
  StreamingSession healthy{healthy_config()};
  healthy.run_until(20.0);
  EXPECT_LT(session.mean_continuity(), healthy.mean_continuity() - 0.1);
  EXPECT_GT(session.total_misses(), healthy.total_misses());
}

TEST(StreamingSession, MeasuredRecordsAreCoherent) {
  StreamingSession session{healthy_config()};
  session.run_until(15.0);
  for (std::size_t p = 0; p < healthy_config().num_peers; p += 7) {
    const StatsRecord r = session.measure(p);
    EXPECT_EQ(r.peer, p);
    EXPECT_DOUBLE_EQ(r.timestamp, 15.0);
    EXPECT_GE(r.buffer_level, 0.0F);
    EXPECT_LE(r.buffer_level,
              static_cast<float>(healthy_config().window /
                                 healthy_config().chunk_rate) +
                  0.1F);
    EXPECT_GE(r.playback_continuity, 0.0F);
    EXPECT_LE(r.playback_continuity, 1.0F);
    EXPECT_GE(r.loss_rate, 0.0F);
    EXPECT_LE(r.loss_rate, 1.0F);
    EXPECT_EQ(r.partner_count, healthy_config().partners);
    EXPECT_GT(r.download_rate_kbps, 0.0F);
  }
}

TEST(StreamingSession, TransfersConserveDownloads) {
  StreamingSession session{healthy_config()};
  session.run_until(12.0);
  // Every transfer lands exactly one chunk at one peer.
  std::uint64_t downloaded = 0;
  for (std::size_t p = 0; p < healthy_config().num_peers; ++p) {
    // downloads are visible through the download rate metric
    downloaded += static_cast<std::uint64_t>(
        session.measure(p).download_rate_kbps / 40.0F * 12.0F + 0.5F);
  }
  EXPECT_NEAR(static_cast<double>(downloaded),
              static_cast<double>(session.total_transfers()),
              0.05 * static_cast<double>(session.total_transfers()) + 5.0);
}

TEST(StreamingSession, DeterministicGivenSeed) {
  StreamingSession a{healthy_config()};
  StreamingSession b{healthy_config()};
  a.run_until(10.0);
  b.run_until(10.0);
  EXPECT_EQ(a.total_transfers(), b.total_transfers());
  EXPECT_EQ(a.total_misses(), b.total_misses());
}

TEST(StreamingSession, ThrottledPeerServesLess) {
  StreamingConfig cfg = healthy_config();
  StreamingSession session{cfg};
  session.throttle_peer(0, 0.0);  // peer 0 uploads nothing
  session.run_until(15.0);
  EXPECT_DOUBLE_EQ(session.measure(0).upload_rate_kbps, 0.0F);
  // It still downloads and plays (its partners carry it).
  EXPECT_GT(session.measure(0).download_rate_kbps, 0.0F);
}

TEST(SessionRecordFeed, TimeOrderedConsumption) {
  StreamingSession session{healthy_config()};
  SessionRecordFeed feed{session, 10.0, 1.0};
  const std::size_t before = feed.remaining(3);
  EXPECT_EQ(before, 10u);
  // Nothing is released before its timestamp.
  EXPECT_TRUE(feed.take(3, 0.5, 10).empty());
  const auto first = feed.take(3, 3.05, 100);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_DOUBLE_EQ(first.front().timestamp, 1.0);
  EXPECT_DOUBLE_EQ(first.back().timestamp, 3.0);
  // Count cap respected.
  const auto capped = feed.take(3, 100.0, 2);
  ASSERT_EQ(capped.size(), 2u);
  EXPECT_DOUBLE_EQ(capped.front().timestamp, 4.0);
  EXPECT_EQ(feed.remaining(3), 5u);
}

TEST(SessionRecordFeed, RecordsCarrySessionDynamics) {
  StreamingConfig cfg = healthy_config();
  cfg.upload_chunks = 1.0;
  cfg.source_upload_chunks = 6.0;  // stressed swarm
  StreamingSession session{cfg};
  SessionRecordFeed feed{session, 15.0, 1.0};
  // Late records should show lower continuity than the session start
  // (the backlog of misses accumulates in a starved swarm).
  const auto records = feed.take(1, 20.0, 100);
  ASSERT_GE(records.size(), 10u);
  EXPECT_LT(records.back().playback_continuity, 1.0F);
}

}  // namespace
}  // namespace icollect::workload
