/// \file icollect_sweep.cpp
/// Parameter-grid Monte-Carlo driver: fan a (grid x replicas) sweep over
/// a work-stealing thread pool and emit one JSONL row per cell with
/// mean / stddev / 95% CI aggregates for every report metric.
///
///   icollect_sweep [key=value ...] [--grid-s=1,2,4] [--grid-c=2,5,10]
///                  [--grid-mu=...] [--grid-lambda=...] [--grid-churn=...]
///                  [--replicas=R] [--jobs=J] [--seed=S]
///                  [--warm=T] [--measure=T] [--out=FILE]
///                  [--metrics-out=DIR] [--metrics-interval=T]
///
/// Determinism contract: identical (seed, grid, replicas) produce
/// byte-identical JSONL for ANY --jobs value — replica seeds are derived
/// per (cell, replica) from the root seed, results land in pre-assigned
/// slots, and aggregation runs in index order after the fan-out. Wall
/// clock and worker count are reported on stderr only, never in the
/// JSONL.
///
/// Examples:
///   icollect_sweep peers=150 lambda=20 mu=10 --grid-s=1,10,20
///       --grid-c=2,5,10 --replicas=8 --jobs=8 --out=fig3.jsonl
///   icollect_sweep peers=60 --grid-s=2,4 --replicas=4
///       --metrics-out=sweep_bundle

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/config_args.h"
#include "core/icollect.h"
#include "obs/json.h"
#include "runner/sweep_runner.h"

namespace {

using namespace icollect;

struct Axis {
  std::string key;             // "s", "c", "mu", "lambda", "churn"
  std::vector<double> values;  // parsed list; s cast to size_t on apply
};

std::vector<double> parse_list(std::string_view text, const char* flag) {
  std::vector<double> out;
  std::string item;
  std::string buf{text};
  char* cursor = buf.data();
  while (cursor != nullptr && *cursor != '\0') {
    char* end = nullptr;
    const double v = std::strtod(cursor, &end);
    if (end == cursor) {
      std::fprintf(stderr, "%s: malformed list '%.*s'\n", flag,
                   static_cast<int>(text.size()), text.data());
      std::exit(1);
    }
    out.push_back(v);
    cursor = (*end == ',') ? end + 1 : end;
  }
  if (out.empty()) {
    std::fprintf(stderr, "%s: empty list\n", flag);
    std::exit(1);
  }
  return out;
}

void apply_axis(p2p::ProtocolConfig& cfg, const std::string& key, double v) {
  if (key == "s") {
    cfg.segment_size = static_cast<std::size_t>(v);
  } else if (key == "c") {
    cfg.set_normalized_capacity(v);
  } else if (key == "mu") {
    cfg.mu = v;
  } else if (key == "lambda") {
    cfg.lambda = v;
  } else if (key == "churn") {
    cfg.churn.enabled = v > 0.0;
    cfg.churn.mean_lifetime = v;
  }
}

std::string axis_label(const std::string& key, double v) {
  char buf[64];
  if (key == "s") {
    std::snprintf(buf, sizeof(buf), "s=%zu", static_cast<std::size_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%s=%g", key.c_str(), v);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  double warm = 10.0;
  double measure = 30.0;
  long replicas = 8;
  long jobs = 0;  // 0 = hardware concurrency
  std::uint64_t seed = 1;
  std::string out_path;
  std::string metrics_dir;
  double metrics_interval = 0.5;
  std::vector<Axis> axes;
  std::vector<std::string_view> cfg_args;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    auto grid_flag = [&](const char* name) {
      const std::string prefix = std::string{"--grid-"} + name + "=";
      if (arg.rfind(prefix, 0) != 0) return false;
      axes.push_back(
          {name, parse_list(arg.substr(prefix.size()), prefix.c_str())});
      return true;
    };
    if (arg == "-h" || arg == "--help") {
      std::printf(
          "usage: %s [key=value ...] [flags]\nprotocol keys:\n%s"
          "grid axes (comma lists; cartesian product):\n"
          "  --grid-s=... --grid-c=... --grid-mu=... --grid-lambda=...\n"
          "  --grid-churn=... (mean lifetime; 0 = static)\n"
          "runner flags:\n"
          "  --replicas=R (default 8)   --jobs=J (default: hardware)\n"
          "  --seed=S (root of the per-cell/per-replica seed tree)\n"
          "  --warm=T --measure=T\n"
          "output:\n"
          "  --out=FILE            JSONL, one row per cell (default "
          "stdout)\n"
          "  --metrics-out=DIR     merged telemetry per cell "
          "(<DIR>/cell-<i>/)\n"
          "  --metrics-interval=T  snapshot spacing (default 0.5)\n",
          argv[0], config_args_help());
      return 0;
    }
    if (grid_flag("s") || grid_flag("c") || grid_flag("mu") ||
        grid_flag("lambda") || grid_flag("churn")) {
      continue;
    }
    if (arg.rfind("--replicas=", 0) == 0) {
      replicas = std::strtol(argv[i] + 11, nullptr, 10);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::strtol(argv[i] + 7, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (arg.rfind("--warm=", 0) == 0) {
      warm = std::strtod(argv[i] + 7, nullptr);
    } else if (arg.rfind("--measure=", 0) == 0) {
      measure = std::strtod(argv[i] + 10, nullptr);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string{arg.substr(6)};
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_dir = std::string{arg.substr(14)};
    } else if (arg.rfind("--metrics-interval=", 0) == 0) {
      metrics_interval = std::strtod(argv[i] + 19, nullptr);
    } else {
      cfg_args.push_back(arg);
    }
  }
  if (replicas < 1 || replicas > 100000) {
    std::fprintf(stderr, "--replicas must be in [1, 100000]\n");
    return 1;
  }
  if (metrics_interval <= 0.0) {
    std::fprintf(stderr, "--metrics-interval must be > 0\n");
    return 1;
  }

  p2p::ProtocolConfig base;
  try {
    apply_config_args(base, cfg_args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\nprotocol keys:\n%s", e.what(),
                 config_args_help());
    return 1;
  }

  // Cartesian product, declared-axis order, rightmost axis fastest —
  // the cell order (and therefore every seed) is part of the contract.
  std::vector<runner::SweepCell> cells;
  std::vector<std::size_t> idx(axes.size(), 0);
  while (true) {
    p2p::ProtocolConfig cfg = base;
    std::string label;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      apply_axis(cfg, axes[a].key, axes[a].values[idx[a]]);
      if (!label.empty()) label += ',';
      label += axis_label(axes[a].key, axes[a].values[idx[a]]);
    }
    if (label.empty()) label = "base";
    try {
      cfg.validate();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cell '%s': %s\n", label.c_str(), e.what());
      return 1;
    }
    runner::ReplicaPlan plan;
    plan.config = cfg;
    plan.warm = warm;
    plan.measure = measure;
    plan.replicas = static_cast<std::size_t>(replicas);
    if (!metrics_dir.empty()) {
      plan.metrics_dir = metrics_dir + "/cell-" + std::to_string(cells.size());
      plan.metrics_interval = metrics_interval;
    }
    cells.push_back({label, plan});
    // Odometer increment; empty axes list degenerates to the single base
    // cell.
    bool done = axes.empty();
    std::size_t a = axes.size();
    while (a > 0) {
      --a;
      if (++idx[a] < axes[a].values.size()) break;
      idx[a] = 0;
      if (a == 0) done = true;  // every axis wrapped: product exhausted
    }
    if (done) break;
  }

  const std::size_t n_jobs = runner::ThreadPool::resolve_jobs(jobs);
  std::fprintf(stderr,
               "icollect_sweep: %zu cells x %ld replicas on %zu jobs "
               "(seed %llu)\n",
               cells.size(), replicas, n_jobs,
               static_cast<unsigned long long>(seed));

  const auto t0 = std::chrono::steady_clock::now();
  runner::ThreadPool pool{n_jobs};
  const runner::SweepRunner sweep{runner::SeedSequence{seed}};
  const auto results = sweep.run(cells, pool);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::fprintf(stderr, "cannot open --out=%s\n", out_path.c_str());
      return 1;
    }
  }
  std::ostream* out = out_path.empty() ? nullptr : &file;
  for (std::size_t c = 0; c < results.size(); ++c) {
    obs::JsonObject row;
    row.field("cell", c)
        .field_str("label", results[c].label)
        .field("seed", seed)
        .field("replicas", replicas)
        .field("warm", warm)
        .field("measure", measure)
        .field_raw("config", config_json(cells[c].plan.config))
        .field_raw("aggregate", results[c].aggregate.to_json());
    const std::string line = row.str();
    if (out != nullptr) {
      *out << line << '\n';
    } else {
      std::printf("%s\n", line.c_str());
    }
  }
  if (out != nullptr) out->flush();

  std::fprintf(stderr, "icollect_sweep: done in %.2fs (%zu simulations)\n",
               elapsed, cells.size() * static_cast<std::size_t>(replicas));
  return 0;
}
