/// \file icollect_node.cpp
/// One live collection node over real TCP: run a peer that injects and
/// gossips coded blocks, or a server that pulls and decodes, against
/// other icollect_node processes.
///
///   # terminal 1 — server listening on 9100, expecting 8 segments
///   icollect_node --role server --listen 127.0.0.1:9100 \
///                 --expect-segments 8 --pull-rate 50
///   # terminal 2 — peer: listen for other peers, feed the server
///   icollect_node --role peer --listen 127.0.0.1:9101 \
///                 --connect 127.0.0.1:9100 --segments 4
///   # terminal 3 — second peer, meshing with both
///   icollect_node --role peer --connect 127.0.0.1:9100 \
///                 --connect 127.0.0.1:9101 --segments 4
///
/// A peer exits 0 once every segment it injected has been ACKed
/// decoded; a server exits 0 once --expect-segments segments decoded.
/// --duration caps the wall-clock wait (exit 1 on timeout).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "net/stream_transport.h"
#include "node/node_config.h"
#include "node/peer_node.h"
#include "proto/pull_policy.h"
#include "node/server_node.h"
#include "obs/clock.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/snapshotter.h"
#include "obs/trace_pipeline.h"

namespace {

/// SIGUSR1 requests an on-demand stats dump; the poll loop services it
/// (poll(2) on Linux returns EINTR rather than restarting, and the loop
/// wakes at least every transport tick, so the dump is prompt).
volatile std::sig_atomic_t g_dump_requested = 0;

void on_sigusr1(int) { g_dump_requested = 1; }

/// One flat JSON object of every registered metric, stamped `t`.
std::string stats_json(const icollect::obs::MetricsRegistry& registry,
                       double t) {
  icollect::obs::JsonObject out;
  out.field("t", t);
  registry.for_each_sample([&out](std::string_view name, double value) {
    out.field(name, value);
  });
  return out.str();
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s --role peer|server [options]\n"
      "  --listen HOST:PORT     accept connections (required for servers\n"
      "                         and any peer other peers dial)\n"
      "  --connect HOST:PORT    dial another node (repeatable)\n"
      "  --node-id N            stable identity (default: derived from "
      "port)\n"
      "  --segment-size s       blocks per segment (default 4)\n"
      "  --buffer-cap B         peer buffer capacity (default 32)\n"
      "  --payload-bytes n      payload bytes per block (default 64)\n"
      "  --lambda x             peer block injection rate (default 8)\n"
      "  --mu x                 peer gossip rate (default 4)\n"
      "  --gamma x              per-block TTL rate (default 0.05)\n"
      "  --pull-rate x          server pulls/sec (default 20)\n"
      "  --pull-policy P        server pull scheduling: uniform|rarest|\n"
      "                         deficit (default uniform)\n"
      "  --segments K           peer: inject K segments, exit when all "
      "ACKed\n"
      "  --expect-segments K    server: exit once K segments decoded\n"
      "  --duration T           wall-clock cap in seconds (default 60)\n"
      "  --seed S               RNG seed (default 1)\n"
      "  --metrics-out FILE     periodic JSONL of node + transport "
      "counters\n"
      "  --metrics-interval T   sample spacing in seconds (default 0.5)\n"
      "  --trace-out FILE       protocol event trace JSONL\n"
      "  --backend NAME         poll | epoll | auto (default auto: epoll\n"
      "                         where the build has it)\n"
      "  --shards N             epoll reactor threads (default auto)\n"
      "  --backlog N            listen(2) backlog (default SOMAXCONN)\n"
      "\n"
      "SIGUSR1 dumps a one-line stats snapshot to stderr.\n",
      argv0);
}

bool split_host_port(const std::string& s, std::string& host,
                     std::uint16_t& port) {
  const auto colon = s.rfind(':');
  if (colon == std::string::npos || colon + 1 >= s.size()) return false;
  host = s.substr(0, colon);
  const long p = std::strtol(s.c_str() + colon + 1, nullptr, 10);
  if (p <= 0 || p > 0xFFFF) return false;
  port = static_cast<std::uint16_t>(p);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace icollect;

  std::string role;
  std::string listen_at;
  std::vector<std::string> connect_to;
  node::NodeConfig cfg;
  cfg.node_id = 0;  // resolved below
  cfg.payload_bytes = 64;
  cfg.lambda = 8.0;
  cfg.mu = 4.0;
  cfg.gamma = 0.05;
  cfg.pull_rate = 20.0;
  cfg.retain_own_until_acked = true;  // a live peer guarantees delivery
  std::size_t expect_segments = 0;
  double duration = 60.0;
  std::string metrics_out;
  std::string trace_out;
  double metrics_interval = 0.5;
  std::string backend = "auto";
  std::size_t shards = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--role") {
      role = value("--role");
    } else if (arg == "--listen") {
      listen_at = value("--listen");
    } else if (arg == "--connect") {
      connect_to.emplace_back(value("--connect"));
    } else if (arg == "--node-id") {
      cfg.node_id = static_cast<std::uint32_t>(
          std::strtoul(value("--node-id"), nullptr, 10));
    } else if (arg == "--segment-size") {
      cfg.segment_size = std::strtoul(value("--segment-size"), nullptr, 10);
    } else if (arg == "--buffer-cap") {
      cfg.buffer_cap = std::strtoul(value("--buffer-cap"), nullptr, 10);
    } else if (arg == "--payload-bytes") {
      cfg.payload_bytes = std::strtoul(value("--payload-bytes"), nullptr, 10);
    } else if (arg == "--lambda") {
      cfg.lambda = std::strtod(value("--lambda"), nullptr);
    } else if (arg == "--mu") {
      cfg.mu = std::strtod(value("--mu"), nullptr);
    } else if (arg == "--gamma") {
      cfg.gamma = std::strtod(value("--gamma"), nullptr);
    } else if (arg == "--pull-rate") {
      cfg.pull_rate = std::strtod(value("--pull-rate"), nullptr);
    } else if (arg == "--pull-policy") {
      const char* name = value("--pull-policy");
      const auto kind = proto::parse_pull_policy_kind(name);
      if (!kind) {
        std::fprintf(stderr,
                     "%s: --pull-policy %s: unknown policy "
                     "(choices: uniform|rarest|deficit)\n",
                     argv[0], name);
        return 2;
      }
      cfg.pull_policy = *kind;
    } else if (arg == "--segments") {
      cfg.max_segments = std::strtoul(value("--segments"), nullptr, 10);
    } else if (arg == "--expect-segments") {
      expect_segments =
          std::strtoul(value("--expect-segments"), nullptr, 10);
    } else if (arg == "--duration") {
      duration = std::strtod(value("--duration"), nullptr);
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(value("--seed"), nullptr, 10);
    } else if (arg == "--metrics-out") {
      metrics_out = value("--metrics-out");
    } else if (arg == "--metrics-interval") {
      metrics_interval = std::strtod(value("--metrics-interval"), nullptr);
    } else if (arg == "--trace-out") {
      trace_out = value("--trace-out");
    } else if (arg == "--backend") {
      backend = value("--backend");
    } else if (arg == "--shards") {
      shards = std::strtoul(value("--shards"), nullptr, 10);
    } else if (arg == "--backlog") {
      cfg.listen_backlog =
          static_cast<int>(std::strtol(value("--backlog"), nullptr, 10));
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                   std::string{arg}.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  const bool is_peer = role == "peer";
  const bool is_server = role == "server";
  if (!is_peer && !is_server) {
    std::fprintf(stderr, "%s: --role must be 'peer' or 'server'\n", argv[0]);
    usage(argv[0]);
    return 2;
  }
  if (listen_at.empty() && connect_to.empty()) {
    std::fprintf(stderr, "%s: need --listen and/or --connect\n", argv[0]);
    return 2;
  }
  if (metrics_interval <= 0.0) {
    std::fprintf(stderr, "%s: --metrics-interval must be > 0\n", argv[0]);
    return 2;
  }
  // node_id may still be 0 here (resolved from the bound port below);
  // validate the user-settable knobs now so bad values are a usage
  // error, not an unhandled exception from the node constructor.
  {
    node::NodeConfig check = cfg;
    if (check.node_id == 0) check.node_id = 1;
    try {
      check.validate();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      return 2;
    }
  }

  net::StreamOptions topts;
  topts.connect_timeout = 5.0;
  topts.connect_retries = 20;  // peers may start before their server
  topts.retry_backoff = 0.25;
  topts.listen_backlog = cfg.listen_backlog;
  topts.reactor_shards = shards;
  std::unique_ptr<net::StreamTransport> transport;
  try {
    transport = net::make_stream_transport(backend, topts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
  net::StreamTransport& tcp = *transport;
  std::fprintf(stderr, "transport backend: %s\n", tcp.backend_name());

  std::uint16_t bound_port = 0;
  if (!listen_at.empty()) {
    std::string host;
    std::uint16_t port = 0;
    if (!split_host_port(listen_at, host, port)) {
      std::fprintf(stderr, "%s: bad --listen '%s' (want HOST:PORT)\n",
                   argv[0], listen_at.c_str());
      return 2;
    }
    try {
      bound_port = tcp.listen(host, port);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      return 1;
    }
    std::fprintf(stderr, "listening on %s (port %u)\n", listen_at.c_str(),
                 bound_port);
  }
  if (cfg.node_id == 0) {
    cfg.node_id = bound_port != 0 ? bound_port
                                  : static_cast<std::uint32_t>(
                                        0x40000000U + cfg.seed % 0xFFFF);
  }

  // The registry is always live (counters are pull-gauges over state
  // the node maintains anyway) so SIGUSR1 can dump stats even when no
  // --metrics-out file was requested.
  obs::MetricsRegistry registry;
  tcp.attach_metrics(registry, "tcp.");
  std::unique_ptr<node::PeerNode> peer;
  std::unique_ptr<node::ServerNode> server;
  if (is_peer) {
    peer = std::make_unique<node::PeerNode>(cfg, tcp, tcp.timers(),
                                            &registry, "node.");
  } else {
    server = std::make_unique<node::ServerNode>(cfg, tcp, tcp.timers(),
                                                &registry, "node.");
  }

  obs::TraceBuffer trace_buf{0};
  if (!trace_out.empty()) {
    try {
      trace_buf.open_jsonl(trace_out);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      return 2;
    }
    if (peer) peer->set_trace_sink(trace_buf.sink());
    if (server) server->set_trace_sink(trace_buf.sink());
  }

  for (const auto& target : connect_to) {
    std::string host;
    std::uint16_t port = 0;
    if (!split_host_port(target, host, port)) {
      std::fprintf(stderr, "%s: bad --connect '%s' (want HOST:PORT)\n",
                   argv[0], target.c_str());
      return 2;
    }
    tcp.connect(host, port);
  }
  if (peer) peer->start();
  if (server) server->start();

  // Snapshots stamp themselves from the transport's wall clock through
  // the obs clock seam — the same Snapshotter the virtual-time sim uses.
  obs::CallbackClock clock{[&tcp] { return tcp.now(); }};
  obs::Snapshotter snaps{registry, metrics_interval, &clock};
  const bool sampling = !metrics_out.empty();
  if (sampling) {
    try {
      snaps.open_jsonl(metrics_out);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      return 2;
    }
    snaps.start();
  }
  std::signal(SIGUSR1, on_sigusr1);

  const auto done = [&]() -> bool {
    if (peer && cfg.max_segments > 0) return peer->all_injected_acked();
    if (server && expect_segments > 0) {
      return server->bank().segments_decoded() >= expect_segments;
    }
    return false;  // run until the duration cap
  };
  bool completed = false;
  while (tcp.now() < duration) {
    tcp.poll_once();
    if (sampling) snaps.sample_if_due();
    if (g_dump_requested != 0) {
      g_dump_requested = 0;
      std::fprintf(stderr, "SIGUSR1 stats %s\n",
                   stats_json(registry, tcp.now()).c_str());
    }
    if (done()) {
      completed = true;
      break;
    }
  }
  if (sampling) {
    snaps.sample();
    snaps.flush();
  }
  if (!trace_out.empty()) trace_buf.flush();

  if (peer) {
    std::fprintf(stderr,
                 "peer %u: injected=%llu acked=%llu gossip_sent=%llu "
                 "pull_replies=%llu\n",
                 cfg.node_id,
                 static_cast<unsigned long long>(peer->segments_injected()),
                 static_cast<unsigned long long>(peer->own_segments_acked()),
                 static_cast<unsigned long long>(peer->gossip_sent()),
                 static_cast<unsigned long long>(peer->pull_replies()));
  } else {
    std::fprintf(
        stderr, "server %u: pulls=%llu innovative=%llu decoded=%llu\n",
        cfg.node_id,
        static_cast<unsigned long long>(server->pulls_sent()),
        static_cast<unsigned long long>(server->innovative_pulls()),
        static_cast<unsigned long long>(server->bank().segments_decoded()));
  }
  const bool has_goal =
      (peer && cfg.max_segments > 0) || (server && expect_segments > 0);
  return !has_goal || completed ? 0 : 1;
}
