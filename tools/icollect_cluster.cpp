/// \file icollect_cluster.cpp
/// Multi-node collection harness: N live peers + M live servers in one
/// process, wired over the deterministic loopback transport. Every node
/// runs the real wire protocol (HELLO handshake, framed gossip, pulls,
/// decode ACKs) — only the byte transport is virtual, so a 16-peer
/// cluster finishes in milliseconds and reproduces bit-for-bit per seed.
///
///   icollect_cluster --peers 16 --servers 2 --segments-per-peer 4
///   icollect_cluster --peers 8 --drop 0.05 --chunk-bytes 7 --progress
///
/// Exit status: 0 when every injected segment was decoded by every
/// server within --max-time, 1 otherwise, 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "node/cluster.h"
#include "proto/pull_policy.h"
#include "workload/trace_replay.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/snapshotter.h"
#include "obs/trace_pipeline.h"
#include "stats/latency_histogram.h"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --peers N             live peers (default 16)\n"
      "  --servers M           live servers (default 2)\n"
      "  --segment-size s      blocks per segment (default 4)\n"
      "  --buffer-cap B        peer buffer capacity (default 32)\n"
      "  --payload-bytes n     payload bytes per block (default 64)\n"
      "  --lambda x            per-peer block injection rate (default 8)\n"
      "  --mu x                per-peer gossip rate (default 4)\n"
      "  --gamma x             per-block TTL rate (default 1)\n"
      "  --server-rate x       pulls/sec per server (default 16)\n"
      "  --capacity c          set server-rate from normalized c\n"
      "  --segments-per-peer K injection budget per peer (default 4)\n"
      "  --max-time T          virtual-time cap (default 300)\n"
      "  --latency L           loopback one-way latency (default 0.001)\n"
      "  --jitter J            extra uniform latency in [0,J) (default 0)\n"
      "  --drop p              per-send loss probability (default 0)\n"
      "  --chunk-bytes n       split deliveries into n-byte reads "
      "(default 0)\n"
      "  --drop-on-ack         peers drop blocks of decoded segments\n"
      "  --no-retain           disable source retention of own segments\n"
      "                        (on by default: a peer re-seeds its own\n"
      "                        unACKed segments after TTL losses)\n"
      "  --pull-policy P       server pull scheduling: uniform|rarest|\n"
      "                        deficit (default uniform)\n"
      "  --seed S              root seed (default 1)\n"
      "  --metrics-out FILE    snapshot JSONL of cluster, per-node, and\n"
      "                        transport metrics\n"
      "  --metrics-interval T  snapshot spacing, virtual time "
      "(default 0.5)\n"
      "  --trace-out FILE      protocol event trace JSONL "
      "(inject/gossip/\n"
      "                        ttl/pull/decode, virtual-time stamped)\n"
      "  --progress            progress lines on stderr\n"
      "  --scenario SPEC       hostile scenario, class:key=value,...\n"
      "                        (byzantine|faults|trace; see\n"
      "                        docs/SCENARIOS.md). Byzantine runs key\n"
      "                        completion on the honest population.\n",
      argv0);
}

/// Quantile summary of a latency histogram as a nested JSON object.
std::string latency_json(const icollect::stats::LatencyHistogram& h) {
  icollect::obs::JsonObject o;
  o.field("count", h.count())
      .field("p50", h.quantile_seconds(0.50))
      .field("p90", h.quantile_seconds(0.90))
      .field("p99", h.quantile_seconds(0.99))
      .field("max", h.max_seconds());
  return o.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace icollect;

  node::ClusterConfig cfg;
  cfg.payload_bytes = 64;
  cfg.segments_per_peer = 4;
  cfg.retain_own_until_acked = true;  // harness wants 100% recovery
  double max_time = 300.0;
  double capacity = -1.0;
  std::string metrics_out;
  std::string trace_out;
  std::string scenario_arg;
  double metrics_interval = 0.5;
  bool progress = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--peers") {
      cfg.num_peers = std::strtoul(value("--peers"), nullptr, 10);
    } else if (arg == "--servers") {
      cfg.num_servers = std::strtoul(value("--servers"), nullptr, 10);
    } else if (arg == "--segment-size") {
      cfg.segment_size = std::strtoul(value("--segment-size"), nullptr, 10);
    } else if (arg == "--buffer-cap") {
      cfg.buffer_cap = std::strtoul(value("--buffer-cap"), nullptr, 10);
    } else if (arg == "--payload-bytes") {
      cfg.payload_bytes = std::strtoul(value("--payload-bytes"), nullptr, 10);
    } else if (arg == "--lambda") {
      cfg.lambda = std::strtod(value("--lambda"), nullptr);
    } else if (arg == "--mu") {
      cfg.mu = std::strtod(value("--mu"), nullptr);
    } else if (arg == "--gamma") {
      cfg.gamma = std::strtod(value("--gamma"), nullptr);
    } else if (arg == "--server-rate") {
      cfg.server_rate = std::strtod(value("--server-rate"), nullptr);
    } else if (arg == "--capacity") {
      capacity = std::strtod(value("--capacity"), nullptr);
    } else if (arg == "--segments-per-peer") {
      cfg.segments_per_peer =
          std::strtoul(value("--segments-per-peer"), nullptr, 10);
    } else if (arg == "--max-time") {
      max_time = std::strtod(value("--max-time"), nullptr);
    } else if (arg == "--latency") {
      cfg.net.latency = std::strtod(value("--latency"), nullptr);
    } else if (arg == "--jitter") {
      cfg.net.latency_jitter = std::strtod(value("--jitter"), nullptr);
    } else if (arg == "--drop") {
      cfg.net.drop_probability = std::strtod(value("--drop"), nullptr);
    } else if (arg == "--chunk-bytes") {
      cfg.net.chunk_bytes = std::strtoul(value("--chunk-bytes"), nullptr, 10);
    } else if (arg == "--drop-on-ack") {
      cfg.drop_on_ack = true;
    } else if (arg == "--no-retain") {
      cfg.retain_own_until_acked = false;
    } else if (arg == "--pull-policy") {
      const char* name = value("--pull-policy");
      const auto kind = proto::parse_pull_policy_kind(name);
      if (!kind) {
        std::fprintf(stderr,
                     "%s: --pull-policy %s: unknown policy "
                     "(choices: uniform|rarest|deficit)\n",
                     argv[0], name);
        return 2;
      }
      cfg.pull_policy = *kind;
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(value("--seed"), nullptr, 10);
      cfg.net.seed = cfg.seed;
    } else if (arg == "--metrics-out") {
      metrics_out = value("--metrics-out");
    } else if (arg == "--metrics-interval") {
      metrics_interval = std::strtod(value("--metrics-interval"), nullptr);
    } else if (arg == "--trace-out") {
      trace_out = value("--trace-out");
    } else if (arg == "--scenario") {
      scenario_arg = value("--scenario");
    } else if (arg == "--progress") {
      progress = true;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                   std::string{arg}.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (cfg.segments_per_peer == 0) {
    std::fprintf(stderr, "%s: --segments-per-peer must be >= 1\n", argv[0]);
    return 2;
  }
  if (metrics_interval <= 0.0) {
    std::fprintf(stderr, "%s: --metrics-interval must be > 0\n", argv[0]);
    return 2;
  }
  if (capacity >= 0.0) {
    cfg.server_rate = capacity * static_cast<double>(cfg.num_peers) /
                      static_cast<double>(cfg.num_servers);
  }

  // A scenario adjusts the config before the cluster is built (nodes
  // start inside the constructor); fault windows attach right after.
  std::unique_ptr<workload::ScenarioSpec> scenario;
  std::unique_ptr<workload::ArrivalProfile> arrival;
  if (!scenario_arg.empty()) {
    try {
      scenario = std::make_unique<workload::ScenarioSpec>(
          workload::ScenarioSpec::parse(scenario_arg));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      return 2;
    }
    using Kind = workload::ScenarioSpec::Kind;
    switch (scenario->kind) {
      case Kind::kByzantine:
        cfg.dishonest_fraction = scenario->dishonest_fraction;
        cfg.corruption = scenario->strategy;
        cfg.integrity_checks = scenario->integrity_checks;
        if (cfg.payload_bytes == 0) cfg.payload_bytes = 32;
        break;
      case Kind::kFaults:
        break;  // attached to the loopback hub below
      case Kind::kTrace:
        // The cluster has no churn engine; only the load shape applies.
        arrival = scenario->make_arrival_profile(cfg.lambda);
        cfg.arrival = arrival.get();
        break;
    }
  }

  obs::MetricsRegistry registry;
  node::LoopbackCluster cluster{cfg, &registry};
  if (scenario && scenario->kind == workload::ScenarioSpec::Kind::kFaults) {
    std::vector<net::NodeId> ids;
    const auto count = static_cast<std::size_t>(
        static_cast<double>(cfg.num_peers) * scenario->partition_fraction);
    for (std::size_t i = 0; i < count; ++i) {
      ids.push_back(static_cast<net::NodeId>(i));
    }
    if (!ids.empty()) {
      cluster.net().schedule_partition(scenario->partition_at,
                                       scenario->heal_at, std::move(ids));
    }
    if (scenario->drain_bytes_per_sec > 0.0) {
      // The first peer becomes a slow reader: every sender's bytes to
      // it stay in flight until drained, exercising send-queue caps.
      cluster.net().set_drain_rate(0, scenario->drain_bytes_per_sec);
    }
  }
  obs::Snapshotter snaps{registry, metrics_interval};
  if (!metrics_out.empty()) {
    try {
      snaps.open_jsonl(metrics_out);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      return 2;
    }
    snaps.start(cluster.now());
  }
  obs::TraceBuffer trace_buf{0};  // pure pass-through to the JSONL stream
  if (!trace_out.empty()) {
    try {
      trace_buf.open_jsonl(trace_out);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      return 2;
    }
    cluster.set_trace_sink(trace_buf.sink());
  }

  // Byzantine runs can never finish the dishonest peers' own segments
  // (they corrupt everything they emit), so completion is keyed on the
  // honest population instead.
  const bool adversarial = cluster.dishonest_count() > 0;
  const auto done = [&] {
    return adversarial ? cluster.honest_complete() : cluster.complete();
  };
  const double step = 0.25;
  while (!done() && cluster.now() < max_time) {
    cluster.run_for(step);
    if (!metrics_out.empty()) snaps.sample_if_due(cluster.now());
    if (progress) {
      std::fprintf(stderr,
                   "t=%.2f injected=%llu decoded=%zu blocks=%llu "
                   "pulls=%llu\n",
                   cluster.now(),
                   static_cast<unsigned long long>(
                       cluster.segments_injected()),
                   cluster.segments_decoded(),
                   static_cast<unsigned long long>(
                       cluster.total_buffered_blocks()),
                   static_cast<unsigned long long>(cluster.pulls_sent()));
    }
  }
  if (!metrics_out.empty()) {
    snaps.sample(cluster.now());
    snaps.flush();
  }
  if (!trace_out.empty()) trace_buf.flush();

  // Cluster-wide wire/node/latency aggregates. Everything here is a
  // count of protocol events or a virtual-time latency, so the block is
  // a deterministic function of the seed — summaries stay comparable
  // across runs with and without telemetry files.
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t handshakes_ok = 0;
  std::uint64_t send_refusals = 0;
  std::uint64_t ttl_expirations = 0;
  stats::LatencyHistogram pull_rtt;
  stats::LatencyHistogram decode_latency;
  const auto add_node = [&](const node::NodeBase& n) {
    frames_sent += n.frames_sent();
    frames_received += n.frames_received();
    decode_errors += n.decode_errors();
    handshakes_ok += n.handshakes_ok();
    send_refusals += n.send_refusals();
  };
  for (std::size_t i = 0; i < cfg.num_peers; ++i) {
    add_node(cluster.peer(i));
    ttl_expirations += cluster.peer(i).ttl_expirations();
  }
  for (std::size_t i = 0; i < cfg.num_servers; ++i) {
    add_node(cluster.server(i));
    pull_rtt.merge(cluster.server(i).pull_rtt());
    decode_latency.merge(cluster.server(i).decode_latency());
  }
  obs::JsonObject stats;
  stats.field("frames_sent", frames_sent)
      .field("frames_received", frames_received)
      .field("wire_decode_errors", decode_errors)
      .field("handshakes_ok", handshakes_ok)
      .field("send_refusals", send_refusals)
      .field("ttl_expirations", ttl_expirations)
      .field("loopback_deliveries", cluster.net().deliveries())
      .field("loopback_chunks", cluster.net().chunks())
      .field("loopback_bytes_out", cluster.net().bytes_sent())
      .field("loopback_queue_drops", cluster.net().backpressure_refusals())
      .field("loopback_in_flight_hwm",
             cluster.net().in_flight_high_watermark())
      .field_raw("pull_rtt", latency_json(pull_rtt))
      .field_raw("decode_latency", latency_json(decode_latency));

  const bool complete = done();
  obs::JsonObject out;
  out.field("complete", complete)
      .field("t", cluster.now())
      .field("peers", cfg.num_peers)
      .field("servers", cfg.num_servers)
      .field("segment_size", cfg.segment_size)
      .field("normalized_capacity", cfg.normalized_capacity())
      .field("segments_injected", cluster.segments_injected())
      .field("segments_decoded", cluster.segments_decoded())
      .field("pulls_sent", cluster.pulls_sent())
      .field("innovative_pulls", cluster.innovative_pulls())
      .field("gossip_sent", cluster.gossip_sent())
      .field("normalized_throughput", cluster.normalized_throughput())
      .field("mean_blocks_per_peer", cluster.mean_blocks_per_peer())
      .field("loopback_sends", cluster.net().sends())
      .field("loopback_drops", cluster.net().drops())
      .field("loopback_bytes", cluster.net().bytes_delivered())
      .field_raw("stats", stats.str());
  if (cfg.pull_policy != proto::PullPolicyKind::kUniform) {
    // Only for the feedback-driven policies, so the default summary —
    // and its golden pins — stays byte-identical.
    std::uint64_t summaries = 0;
    std::uint64_t targeted = 0;
    for (std::size_t i = 0; i < cfg.num_servers; ++i) {
      summaries += cluster.server(i).summaries_received();
      targeted += cluster.server(i).targeted_pulls();
    }
    obs::JsonObject pj;
    pj.field_str("policy", proto::to_string(cfg.pull_policy))
        .field("summaries_received", summaries)
        .field("targeted_pulls", targeted);
    out.field_raw("pull_policy", pj.str());
  }
  if (scenario) {
    // Only with --scenario, so the default output — and its golden
    // pins — stays byte-identical.
    obs::JsonObject sj;
    sj.field_raw("spec", scenario->to_json())
        .field("dishonest_peers", cluster.dishonest_count())
        .field("honest_complete", cluster.honest_complete())
        .field("honest_segments_injected",
               cluster.honest_segments_injected())
        .field("blocks_corrupted", cluster.blocks_corrupted())
        .field("blocks_quarantined", cluster.blocks_quarantined())
        .field("polluted_pulls", cluster.polluted_pulls())
        .field("fault_drops", cluster.net().fault_drops())
        .field("queue_refusals", cluster.net().backpressure_refusals());
    out.field_raw("scenario", sj.str());
  }
  std::printf("%s\n", out.str().c_str());
  return complete ? 0 : 1;
}
