/// \file icollect_loadgen.cpp
/// Synthetic-peer load generator: drives ONE ServerNode with tens of
/// thousands of concurrent TCP peers from a single process, to measure
/// how far each transport backend scales (docs/PERFORMANCE.md;
/// scripts/run_bench.py --node commits the numbers as BENCH_node.json).
///
/// Each synthetic peer is a real connection speaking the real wire
/// protocol — HELLO handshake, then PULL_REQUEST answered with a
/// PULL_BLOCK carrying a freshly random-coded block — but all peers
/// share one transport and one flat state table instead of full
/// PeerNode machinery, so the *generator* stays cheap enough to saturate
/// the server under test.
///
/// Blocks are coded over a finite global segment space (--segments S,
/// one shared origin): the server's bank accumulates rank and decodes
/// exactly S segments, so its O(peers) decode-ACK broadcast happens a
/// bounded number of times. After a segment is ACKed the generator keeps
/// answering pulls with blocks of already-decoded segments (the server
/// counts them stale) — round-trip flow continues indefinitely, which is
/// what the measurement window meters.
///
///   icollect_loadgen --target 127.0.0.1:9100 --peers 10000 \
///       --backend epoll --segments 64 --duration 30 --measure 10
///
/// Exit 0 iff every peer established+handshook and (when --segments > 0)
/// every segment in the space was ACKed decoded. The one-line JSON
/// summary on stdout is schema "icollect-node-bench/1".

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coding/coded_block.h"
#include "net/stream_transport.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "sim/random.h"
#include "wire/frame.h"
#include "wire/message.h"

namespace {

using namespace icollect;

constexpr const char* kSchema = "icollect-node-bench/1";

/// The shared origin id of the synthetic segment space. Arbitrary; only
/// needs to be consistent across all synthetic peers so their blocks
/// pool into the same segments at the server.
constexpr std::uint32_t kLoadgenOrigin = 0x10AD0001U;

void usage(const char* argv0) {
  std::printf(
      "usage: %s --target HOST:PORT [options]\n"
      "  --peers N           concurrent synthetic peers (default 100)\n"
      "  --segments S        global segment space; 0 = never decode\n"
      "                      (default 64)\n"
      "  --segment-size s    blocks per segment, must match the server\n"
      "                      (default 4)\n"
      "  --payload-bytes n   payload per coded block (default 64)\n"
      "  --backend NAME      poll | epoll | auto (default auto)\n"
      "  --shards N          epoll reactor threads (default auto)\n"
      "  --ramp R            connects initiated per second (default 2000)\n"
      "  --duration T        total wall-clock cap seconds (default 30)\n"
      "  --measure T         measurement window once all peers are up\n"
      "                      (default 5)\n"
      "  --occupancy B       buffered-block count reported in replies\n"
      "                      (default 16)\n"
      "  --seed S            RNG seed (default 1)\n"
      "\n"
      "Prints a one-line JSON summary (schema %s) on stdout.\n",
      argv0, kSchema);
}

bool split_host_port(const std::string& s, std::string& host,
                     std::uint16_t& port) {
  const auto colon = s.rfind(':');
  if (colon == std::string::npos || colon + 1 >= s.size()) return false;
  host = s.substr(0, colon);
  const long p = std::strtol(s.c_str() + colon + 1, nullptr, 10);
  if (p <= 0 || p > 0xFFFF) return false;
  port = static_cast<std::uint16_t>(p);
  return true;
}

struct PeerState {
  wire::FrameDecoder decoder;
  bool hello_received = false;
};

/// The whole generator: one TransportHandler multiplexing every
/// synthetic peer over one shared transport.
class LoadGen final : public net::TransportHandler {
 public:
  LoadGen(net::StreamTransport& transport, std::size_t segment_space,
          std::size_t segment_size, std::size_t payload_bytes,
          std::uint32_t occupancy, std::uint64_t seed)
      : transport_{transport},
        segment_space_{segment_space},
        segment_size_{segment_size},
        payload_bytes_{payload_bytes},
        occupancy_{occupancy},
        rng_{seed} {}

  void on_peer_up(net::NodeId conn) override {
    ++established_;
    auto& state = peers_[conn];
    state.hello_received = false;
    wire::Hello hello;
    hello.role = wire::NodeRole::kPeer;
    hello.node_id = 0x4C470000U + conn;  // unique per connection
    hello.segment_size = static_cast<std::uint16_t>(segment_size_);
    hello.buffer_cap = occupancy_;
    send(conn, wire::Message{hello});
  }

  void on_peer_down(net::NodeId conn) override {
    ++downs_;
    peers_.erase(conn);
  }

  void on_bytes(net::NodeId conn, std::span<const std::uint8_t> bytes) override {
    const auto it = peers_.find(conn);
    if (it == peers_.end()) return;
    PeerState& state = it->second;
    state.decoder.feed(bytes);
    for (;;) {
      auto result = state.decoder.next();
      if (result.status == wire::DecodeStatus::kNeedMore) break;
      if (wire::is_error(result.status)) {
        ++decode_errors_;
        transport_.close_peer(conn);
        peers_.erase(conn);
        return;
      }
      ++frames_received_;
      if (!handle_message(conn, state, std::move(result.message))) {
        return;  // connection torn down mid-drain
      }
    }
  }

  [[nodiscard]] std::size_t established() const noexcept {
    return established_;
  }
  [[nodiscard]] std::size_t downs() const noexcept { return downs_; }
  [[nodiscard]] std::size_t handshakes_ok() const noexcept {
    return handshakes_ok_;
  }
  [[nodiscard]] std::uint64_t frames_sent() const noexcept {
    return frames_sent_;
  }
  [[nodiscard]] std::uint64_t frames_received() const noexcept {
    return frames_received_;
  }
  [[nodiscard]] std::uint64_t pulls_answered() const noexcept {
    return pulls_answered_;
  }
  [[nodiscard]] std::uint64_t acks_received() const noexcept {
    return acks_received_;
  }
  [[nodiscard]] std::uint64_t send_refusals() const noexcept {
    return send_refusals_;
  }
  [[nodiscard]] std::uint64_t decode_errors() const noexcept {
    return decode_errors_;
  }
  [[nodiscard]] std::size_t segments_acked() const noexcept {
    return acked_segments_.size();
  }
  [[nodiscard]] bool goal_reached() const noexcept {
    return segment_space_ == 0 || acked_segments_.size() >= segment_space_;
  }

 private:
  bool handle_message(net::NodeId conn, PeerState& state,
                      wire::Message&& message) {
    if (std::holds_alternative<wire::Hello>(message)) {
      if (!state.hello_received) {
        state.hello_received = true;
        ++handshakes_ok_;
      }
      return true;
    }
    if (const auto* pull = std::get_if<wire::PullRequest>(&message)) {
      wire::PullBlock reply;
      reply.token = pull->token;
      reply.occupancy = occupancy_;
      reply.has_block = segment_space_ > 0;
      if (reply.has_block) reply.block = random_block();
      ++pulls_answered_;
      send(conn, wire::Message{std::move(reply)});
      return true;
    }
    if (const auto* ack = std::get_if<wire::SegmentDecodedAck>(&message)) {
      ++acks_received_;
      if (ack->segment.origin == kLoadgenOrigin &&
          ack->segment.seq < segment_space_) {
        acked_segments_.insert(ack->segment.seq);
      }
      return true;
    }
    if (std::holds_alternative<wire::Bye>(message)) {
      transport_.close_peer(conn);
      peers_.erase(conn);
      return false;
    }
    return true;  // gossip etc.: ignore
  }

  /// A random-coefficient coded block of a uniformly random segment.
  /// Prefers not-yet-ACKed segments so the server's bank keeps gaining
  /// rank; once the space is exhausted any segment serves (stale).
  coding::CodedBlock random_block() {
    std::uint32_t seq;
    if (acked_segments_.size() >= segment_space_) {
      seq = static_cast<std::uint32_t>(rng_.uniform_index(segment_space_));
    } else {
      do {
        seq = static_cast<std::uint32_t>(rng_.uniform_index(segment_space_));
      } while (acked_segments_.count(seq) != 0);
    }
    coding::CodedBlock block;
    block.segment = coding::SegmentId{kLoadgenOrigin, seq};
    block.coefficients.resize(segment_size_);
    bool nonzero = false;
    for (auto& c : block.coefficients) {
      c = static_cast<gf::Element>(rng_.uniform_index(256));
      nonzero = nonzero || c != 0;
    }
    if (!nonzero) {
      block.coefficients[rng_.uniform_index(segment_size_)] =
          static_cast<gf::Element>(1 + rng_.uniform_index(255));
    }
    block.payload.assign(payload_bytes_,
                         static_cast<std::uint8_t>(0xA5U ^ seq));
    return block;
  }

  void send(net::NodeId conn, const wire::Message& message) {
    frame_scratch_.clear();
    wire::encode_frame(message, frame_scratch_);
    if (transport_.send(conn, frame_scratch_)) {
      ++frames_sent_;
    } else {
      ++send_refusals_;
    }
  }

  net::StreamTransport& transport_;
  std::size_t segment_space_;
  std::size_t segment_size_;
  std::size_t payload_bytes_;
  std::uint32_t occupancy_;
  sim::Rng rng_;
  std::unordered_map<net::NodeId, PeerState> peers_;
  std::unordered_set<std::uint32_t> acked_segments_;
  std::vector<std::uint8_t> frame_scratch_;
  std::size_t established_ = 0;
  std::size_t downs_ = 0;
  std::size_t handshakes_ok_ = 0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
  std::uint64_t pulls_answered_ = 0;
  std::uint64_t acks_received_ = 0;
  std::uint64_t send_refusals_ = 0;
  std::uint64_t decode_errors_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string target;
  std::size_t peers = 100;
  std::size_t segments = 64;
  std::size_t segment_size = 4;
  std::size_t payload_bytes = 64;
  std::string backend = "auto";
  std::size_t shards = 0;
  double ramp = 2000.0;
  double duration = 30.0;
  double measure = 5.0;
  std::uint32_t occupancy = 16;
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--target") {
      target = value("--target");
    } else if (arg == "--peers") {
      peers = std::strtoul(value("--peers"), nullptr, 10);
    } else if (arg == "--segments") {
      segments = std::strtoul(value("--segments"), nullptr, 10);
    } else if (arg == "--segment-size") {
      segment_size = std::strtoul(value("--segment-size"), nullptr, 10);
    } else if (arg == "--payload-bytes") {
      payload_bytes = std::strtoul(value("--payload-bytes"), nullptr, 10);
    } else if (arg == "--backend") {
      backend = value("--backend");
    } else if (arg == "--shards") {
      shards = std::strtoul(value("--shards"), nullptr, 10);
    } else if (arg == "--ramp") {
      ramp = std::strtod(value("--ramp"), nullptr);
    } else if (arg == "--duration") {
      duration = std::strtod(value("--duration"), nullptr);
    } else if (arg == "--measure") {
      measure = std::strtod(value("--measure"), nullptr);
    } else if (arg == "--occupancy") {
      occupancy = static_cast<std::uint32_t>(
          std::strtoul(value("--occupancy"), nullptr, 10));
    } else if (arg == "--seed") {
      seed = std::strtoull(value("--seed"), nullptr, 10);
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                   std::string{arg}.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  std::string host;
  std::uint16_t port = 0;
  if (target.empty() || !split_host_port(target, host, port)) {
    std::fprintf(stderr, "%s: need --target HOST:PORT\n", argv[0]);
    usage(argv[0]);
    return 2;
  }
  if (peers == 0 || segment_size == 0 || segment_size > 0xFFFF ||
      ramp <= 0.0 || duration <= 0.0 || measure <= 0.0) {
    std::fprintf(stderr, "%s: invalid parameter values\n", argv[0]);
    return 2;
  }

  net::StreamOptions topts;
  topts.connect_timeout = 5.0;
  topts.connect_retries = 10;  // SYN backlog overflow during the ramp
  topts.retry_backoff = 0.2;
  topts.reactor_shards = shards;
  std::unique_ptr<net::StreamTransport> transport;
  try {
    transport = net::make_stream_transport(backend, topts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
  LoadGen gen{*transport, segments,     segment_size,
              payload_bytes, occupancy, seed};
  transport->set_handler(&gen);
  std::fprintf(stderr, "loadgen: %zu peers -> %s over %s\n", peers,
               target.c_str(), transport->backend_name());

  // Ramped connect: initiate at most `ramp` connects per second so the
  // server's accept path sees a storm it can absorb, not a cliff.
  std::size_t started = 0;
  bool measuring = false;
  bool measured = false;
  double measure_start_t = 0.0;
  std::uint64_t frames_sent_0 = 0;
  std::uint64_t frames_recv_0 = 0;
  std::uint64_t pulls_0 = 0;
  double measure_window = 0.0;
  double frames_per_s = 0.0;
  double pull_rt_per_s = 0.0;

  while (transport->now() < duration) {
    const double t = transport->now();
    const auto want = std::min<std::size_t>(
        peers, static_cast<std::size_t>(ramp * t) + 1);
    while (started < want) {
      transport->connect(host, port);
      ++started;
    }
    transport->poll_once(0.005);
    if (!measuring && gen.handshakes_ok() >= peers) {
      measuring = true;
      measure_start_t = transport->now();
      frames_sent_0 = gen.frames_sent();
      frames_recv_0 = gen.frames_received();
      pulls_0 = gen.pulls_answered();
    }
    if (measuring && !measured &&
        transport->now() - measure_start_t >= measure) {
      measure_window = transport->now() - measure_start_t;
      frames_per_s =
          static_cast<double>(gen.frames_sent() - frames_sent_0 +
                              gen.frames_received() - frames_recv_0) /
          measure_window;
      pull_rt_per_s =
          static_cast<double>(gen.pulls_answered() - pulls_0) /
          measure_window;
      measured = true;
    }
    if (measured && gen.goal_reached()) break;
  }
  // Ran out of time mid-window: report the partial window.
  if (measuring && !measured) {
    measure_window = transport->now() - measure_start_t;
    if (measure_window > 0.0) {
      frames_per_s =
          static_cast<double>(gen.frames_sent() - frames_sent_0 +
                              gen.frames_received() - frames_recv_0) /
          measure_window;
      pull_rt_per_s = static_cast<double>(gen.pulls_answered() - pulls_0) /
                      measure_window;
    }
    measured = true;
  }

  const bool success =
      gen.handshakes_ok() >= peers && gen.goal_reached() && measured;

  obs::JsonObject out;
  out.field_str("schema", kSchema);
  out.field_str("backend", transport->backend_name());
  out.field("conns_target", peers);
  out.field("conns_established", gen.established());
  out.field("conns_down", gen.downs());
  out.field("handshakes_ok", gen.handshakes_ok());
  out.field("frames_sent", gen.frames_sent());
  out.field("frames_received", gen.frames_received());
  out.field("pulls_answered", gen.pulls_answered());
  out.field("acks_received", gen.acks_received());
  out.field("send_refusals", gen.send_refusals());
  out.field("decode_errors", gen.decode_errors());
  out.field("segments_total", segments);
  out.field("segments_acked", gen.segments_acked());
  out.field("goal_reached", gen.goal_reached());
  out.field("measure_window_s", measure_window);
  out.field("frames_per_s", frames_per_s);
  out.field("pull_round_trips_per_s", pull_rt_per_s);
  out.field("duration_s", transport->now());
  // Transport-side counters (epoll.*/tcp.* inventory) nested verbatim.
  obs::MetricsRegistry registry;
  transport->attach_metrics(registry, std::string{transport->backend_name()} +
                                          ".");
  obs::JsonObject tstats;
  registry.for_each_sample([&tstats](std::string_view name, double value) {
    tstats.field(name, value);
  });
  out.field_raw("transport", tstats.str());
  std::printf("%s\n", out.str().c_str());
  std::fflush(stdout);

  std::fprintf(stderr,
               "loadgen: established=%zu/%zu handshakes=%zu pulls=%llu "
               "acked=%zu/%zu rt/s=%.0f %s\n",
               gen.established(), peers, gen.handshakes_ok(),
               static_cast<unsigned long long>(gen.pulls_answered()),
               gen.segments_acked(), segments, pull_rt_per_s,
               success ? "OK" : "FAIL");
  return success ? 0 : 1;
}
