/// \file icollect_scenarios.cpp
/// Scenario bench generator: the two figure-style tables behind
/// BENCH_scenarios.json.
///
///   Table A — pollution spread vs. honest fraction (simulator):
///     for each dishonest fraction, a defended arm (homomorphic
///     integrity checks on) and an undefended control (checks=0),
///     reporting corruption volume, quarantine counts, the fraction of
///     server pulls that delivered polluted blocks, decoded-payload CRC
///     failures (pollution that reached Gaussian elimination), and
///     normalized throughput.
///
///   Table B — collection-time inflation vs. fault severity (loopback
///     cluster): half the peers are blackholed for a partition window
///     of growing duration (the severity axis); each point reports
///     completion time, its inflation over the unfaulted baseline,
///     fault drops, and send-queue refusals (expected to stay 0 — caps
///     must hold under partition pressure). Isolated peers hold
///     segments the servers still need, so completion time tracks the
///     heal deadline — the severity signal is structural, not noise.
///
/// Every point aggregates R seeded replicas into mean / stddev / 95% CI
/// half-width (Student-t, runner::ci95_half_width) / min / max, so the
/// table carries honest error bars at small R.
///
///   icollect_scenarios [--replicas R] [--seed S] [--out FILE] [--quick]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "core/icollect.h"
#include "node/cluster.h"
#include "obs/json.h"
#include "runner/aggregate.h"
#include "stats/summary.h"

namespace {

using namespace icollect;

/// One metric's replica aggregate, in the AggregateReport JSON idiom.
std::string summary_json(const stats::Summary& s) {
  obs::JsonObject o;
  o.field("mean", s.mean())
      .field("stddev", s.stddev())
      .field("ci95", runner::ci95_half_width(s))
      .field("min", s.min())
      .field("max", s.max());
  return o.str();
}

/// Named metric summaries, accumulated in insertion order so the output
/// is byte-stable across runs with the same seed.
class MetricTable {
 public:
  void add(std::string_view name, double value) {
    for (auto& [n, s] : rows_) {
      if (n == name) {
        s.add(value);
        return;
      }
    }
    rows_.emplace_back(std::string{name}, stats::Summary{});
    rows_.back().second.add(value);
  }

  [[nodiscard]] const stats::Summary* find(std::string_view name) const {
    for (const auto& [n, s] : rows_) {
      if (n == name) return &s;
    }
    return nullptr;
  }

  [[nodiscard]] std::string to_json() const {
    obs::JsonObject o;
    for (const auto& [n, s] : rows_) o.field_raw(n, summary_json(s));
    return o.str();
  }

 private:
  std::vector<std::pair<std::string, stats::Summary>> rows_;
};

// --- Table A: pollution spread vs. honest fraction (simulator) ------------

struct PollutionPointSpec {
  double dishonest_fraction;
  std::size_t integrity_checks;  // 0 = undefended control arm
};

p2p::ProtocolConfig sim_base_config() {
  p2p::ProtocolConfig cfg;
  cfg.num_peers = 40;
  cfg.lambda = 8.0;
  cfg.segment_size = 4;
  cfg.mu = 8.0;
  cfg.gamma = 1.0;
  cfg.buffer_cap = 40;
  cfg.num_servers = 2;
  cfg.set_normalized_capacity(2.5);
  cfg.payload_bytes = 16;
  return cfg;
}

std::string run_pollution_point(const PollutionPointSpec& point,
                                std::uint64_t base_seed,
                                std::uint64_t replicas, double warm,
                                double measure) {
  MetricTable table;
  for (std::uint64_t r = 0; r < replicas; ++r) {
    p2p::ProtocolConfig cfg = sim_base_config();
    cfg.adversary.dishonest_fraction = point.dishonest_fraction;
    cfg.adversary.strategy = proto::CorruptionStrategy::kRandomPayload;
    cfg.adversary.integrity_checks = point.integrity_checks;
    cfg.seed = base_seed + r;

    CollectionSystem system{cfg};
    system.warm_up(warm);
    system.run(measure);
    const CollectionReport rep = system.report();
    const auto& m = system.network().metrics();

    table.add("blocks_corrupted",
              static_cast<double>(m.blocks_corrupted));
    table.add("blocks_quarantined",
              static_cast<double>(m.blocks_quarantined));
    table.add("polluted_pull_fraction",
              rep.server_pulls > 0
                  ? static_cast<double>(m.polluted_pulls) /
                        static_cast<double>(rep.server_pulls)
                  : 0.0);
    table.add("payload_crc_failures",
              static_cast<double>(rep.payload_crc_failures));
    table.add("segments_decoded",
              static_cast<double>(rep.segments_decoded));
    table.add("normalized_throughput", rep.normalized_throughput);
  }

  obs::JsonObject o;
  o.field("dishonest_fraction", point.dishonest_fraction)
      .field("honest_fraction", 1.0 - point.dishonest_fraction)
      .field("integrity_checks",
             static_cast<std::uint64_t>(point.integrity_checks))
      .field_str("arm", point.integrity_checks > 0 ? "defended"
                                                   : "undefended")
      .field_raw("metrics", table.to_json());
  return o.str();
}

// --- Table B: collection-time inflation vs. fault severity (cluster) ------

node::ClusterConfig cluster_base_config() {
  node::ClusterConfig cfg;
  cfg.num_peers = 8;
  cfg.num_servers = 2;
  cfg.segment_size = 3;
  cfg.buffer_cap = 24;
  cfg.payload_bytes = 16;
  cfg.lambda = 6.0;
  cfg.mu = 6.0;
  cfg.gamma = 0.5;
  cfg.server_rate = 16.0;
  cfg.segments_per_peer = 2;
  cfg.retain_own_until_acked = true;
  return cfg;
}

struct FaultPointResult {
  std::string json;        // point object minus the inflation field
  double mean_time = 0.0;  // mean completion time over replicas
  MetricTable table;
};

FaultPointResult run_fault_point(double partition_fraction,
                                 double partition_at, double duration,
                                 std::uint64_t base_seed,
                                 std::uint64_t replicas, double max_time) {
  FaultPointResult out;
  for (std::uint64_t r = 0; r < replicas; ++r) {
    node::ClusterConfig cfg = cluster_base_config();
    cfg.seed = base_seed + r;
    cfg.net.seed = cfg.seed;

    node::LoopbackCluster cluster{cfg};
    std::vector<net::NodeId> ids;
    const auto count = static_cast<std::size_t>(
        static_cast<double>(cfg.num_peers) * partition_fraction);
    for (std::size_t i = 0; i < count; ++i) {
      ids.push_back(static_cast<net::NodeId>(i));
    }
    if (!ids.empty() && duration > 0.0) {
      cluster.net().schedule_partition(partition_at,
                                       partition_at + duration,
                                       std::move(ids));
    }
    const bool complete = cluster.run_to_completion(max_time);

    out.table.add("complete", complete ? 1.0 : 0.0);
    out.table.add("completion_time", cluster.now());
    out.table.add("fault_drops",
                  static_cast<double>(cluster.net().fault_drops()));
    out.table.add("queue_refusals",
                  static_cast<double>(
                      cluster.net().backpressure_refusals()));
    out.table.add("segments_decoded",
                  static_cast<double>(cluster.segments_decoded()));
  }
  out.mean_time = out.table.find("completion_time")->mean();

  obs::JsonObject o;
  o.field("partition_fraction", partition_fraction)
      .field("partitioned_peers",
             static_cast<std::uint64_t>(
                 static_cast<double>(cluster_base_config().num_peers) *
                 partition_fraction))
      .field("partition_at", partition_at)
      .field("partition_duration", duration)
      .field_raw("metrics", out.table.to_json());
  out.json = o.str();
  return out;
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --replicas R   seeded replicas per point (default 5)\n"
      "  --seed S       base seed (default 1)\n"
      "  --out FILE     write JSON to FILE (default stdout)\n"
      "  --quick        2 replicas, shorter runs (CI smoke)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t replicas = 5;
  std::uint64_t seed = 1;
  std::string out_path;
  bool quick = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--replicas") {
      replicas = std::strtoull(value("--replicas"), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(value("--seed"), nullptr, 10);
    } else if (arg == "--out") {
      out_path = value("--out");
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                   std::string{arg}.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (quick) replicas = 2;
  if (replicas == 0) {
    std::fprintf(stderr, "%s: --replicas must be >= 1\n", argv[0]);
    return 2;
  }
  const double warm = quick ? 1.0 : 2.0;
  const double measure = quick ? 6.0 : 15.0;
  const double max_time = 600.0;

  std::string body;
  body += "{\n";
  body += "  \"schema\": \"icollect-scenario-bench-v1\",\n";
  body += "  \"replicas\": " + std::to_string(replicas) + ",\n";
  body += "  \"base_seed\": " + std::to_string(seed) + ",\n";

  // Table A.
  {
    const p2p::ProtocolConfig base = sim_base_config();
    obs::JsonObject cfg_json;
    cfg_json.field("peers", static_cast<std::uint64_t>(base.num_peers))
        .field("servers", static_cast<std::uint64_t>(base.num_servers))
        .field("segment_size",
               static_cast<std::uint64_t>(base.segment_size))
        .field("lambda", base.lambda)
        .field("mu", base.mu)
        .field("normalized_capacity", base.normalized_capacity())
        .field("payload_bytes",
               static_cast<std::uint64_t>(base.payload_bytes))
        .field_str("strategy", "random-payload")
        .field("warm", warm)
        .field("measure", measure);
    body += "  \"pollution_vs_honest_fraction\": {\n";
    body += "    \"config\": " + cfg_json.str() + ",\n";
    body += "    \"points\": [\n";
    const double fractions[] = {0.0, 0.10, 0.25, 0.40};
    bool first = true;
    for (const double f : fractions) {
      for (const std::size_t checks : {std::size_t{2}, std::size_t{0}}) {
        if (f == 0.0 && checks == 0) continue;  // no pollution to defend
        if (!first) body += ",\n";
        first = false;
        std::fprintf(stderr, "pollution: fraction=%.2f checks=%zu ...\n",
                     f, checks);
        body += "      " +
                run_pollution_point({f, checks}, seed, replicas, warm,
                                    measure);
      }
    }
    body += "\n    ]\n  },\n";
  }

  // Table B.
  {
    const node::ClusterConfig base = cluster_base_config();
    const double partition_fraction = 0.5;
    const double partition_at = 1.0;
    obs::JsonObject cfg_json;
    cfg_json.field("peers", static_cast<std::uint64_t>(base.num_peers))
        .field("servers", static_cast<std::uint64_t>(base.num_servers))
        .field("segment_size",
               static_cast<std::uint64_t>(base.segment_size))
        .field("segments_per_peer",
               static_cast<std::uint64_t>(base.segments_per_peer))
        .field("lambda", base.lambda)
        .field("mu", base.mu)
        .field("server_rate", base.server_rate)
        .field("payload_bytes",
               static_cast<std::uint64_t>(base.payload_bytes))
        .field("max_time", max_time);
    body += "  \"collection_time_vs_fault_severity\": {\n";
    body += "    \"config\": " + cfg_json.str() + ",\n";
    body += "    \"points\": [\n";
    const double durations[] = {0.0, 2.0, 4.0, 8.0};
    double baseline_mean = 0.0;
    bool first = true;
    for (const double d : durations) {
      std::fprintf(stderr, "faults: partition_duration=%.1f ...\n", d);
      FaultPointResult res =
          run_fault_point(d > 0.0 ? partition_fraction : 0.0,
                          partition_at, d, seed, replicas, max_time);
      if (d == 0.0) baseline_mean = res.mean_time;
      // Splice the inflation factor into the point object (it depends
      // on the duration-0 baseline, which is always the first point).
      std::string point = res.json;
      obs::JsonObject extra;
      extra.field("time_inflation_vs_baseline",
                  baseline_mean > 0.0 ? res.mean_time / baseline_mean
                                      : 0.0);
      const std::string extra_body = extra.str();
      point.insert(point.size() - 1,
                   "," + extra_body.substr(1, extra_body.size() - 2));
      if (!first) body += ",\n";
      first = false;
      body += "      " + point;
    }
    body += "\n    ]\n  }\n";
  }
  body += "}\n";

  if (out_path.empty()) {
    std::fputs(body.c_str(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "%s: cannot open %s: %s\n", argv[0],
                 out_path.c_str(), std::strerror(errno));
    return 2;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu bytes)\n", out_path.c_str(), body.size());
  return 0;
}
