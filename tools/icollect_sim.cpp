/// \file icollect_sim.cpp
/// Command-line driver: run one indirect-collection session (and,
/// optionally, the fluid model and the direct baseline) for an arbitrary
/// key=value configuration and print the full report.
///
///   icollect_sim [key=value ...] [warm=T] [measure=T] [ode=0|1] [direct=0|1]
///                [--metrics-out=DIR] [--metrics-interval=T]
///                [--trace-out[=FILE]] [--trace-filter=k1,k2,...]
///                [--profile] [--progress]
///
/// Examples:
///   icollect_sim peers=300 lambda=20 s=20 mu=10 c=5
///   icollect_sim lambda=8 s=1 c=2 churn=2 fidelity=real-coding ode=0
///   icollect_sim peers=100 --metrics-out=run1 --trace-out --profile

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config_args.h"
#include "core/icollect.h"
#include "gf/kernels.h"
#include "obs/json.h"
#include "obs/telemetry.h"
#include "p2p/network_telemetry.h"
#include "workload/trace_replay.h"

int main(int argc, char** argv) {
  using namespace icollect;

  double warm = 10.0;
  double measure = 30.0;
  bool run_ode = true;
  bool run_direct = false;
  std::string trace_path;
  std::string scenario_arg;
  obs::TelemetryOptions topts;
  bool trace_out_requested = false;
  std::optional<p2p::PullPolicy> pull_policy_override;

  // Split driver options from protocol key=values.
  std::vector<std::string_view> cfg_args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (arg == "-h" || arg == "--help") {
      std::printf(
          "usage: %s [key=value ...]\nprotocol keys:\n%s"
          "driver keys:\n  warm=T measure=T ode=0|1 direct=0|1 "
          "trace=FILE.csv\n"
          "  --pull-policy=uniform|all|rarest|deficit  (server pull "
          "scheduling)\n"
          "telemetry flags:\n"
          "  --metrics-out=DIR      write a telemetry bundle (config.json,\n"
          "                         snapshots.jsonl/.csv, summary.json)\n"
          "  --metrics-interval=T   snapshot spacing in virtual time "
          "(default 0.5)\n"
          "  --trace-out[=FILE]     protocol event trace JSONL (default\n"
          "                         <metrics-dir>/trace.jsonl)\n"
          "  --trace-filter=a,b,..  keep only these trace kinds "
          "(default all)\n"
          "  --profile              per-event-type wall-clock profile\n"
          "  --progress             progress line per snapshot (stderr)\n"
          "  --gf-kernel=K          GF(2^8) kernel: scalar|ssse3|avx2|auto\n"
          "                         (default auto; env ICOLLECT_GF_KERNEL)\n"
          "scenario pack (docs/SCENARIOS.md):\n"
          "  --scenario=SPEC        hostile scenario, class:key=value,...\n"
          "                         byzantine:fraction=,strategy=,checks=\n"
          "                         faults:fraction=,at=,heal=\n"
          "                         trace:amplitude=,period=,burst=,\n"
          "                               burst-at=,burst-len=,sigma=,"
          "lifetime=\n",
          argv[0], config_args_help());
      return 0;
    }
    if (arg.rfind("warm=", 0) == 0) {
      warm = std::strtod(argv[i] + 5, nullptr);
    } else if (arg.rfind("measure=", 0) == 0) {
      measure = std::strtod(argv[i] + 8, nullptr);
    } else if (arg.rfind("ode=", 0) == 0) {
      run_ode = std::strtol(argv[i] + 4, nullptr, 10) != 0;
    } else if (arg.rfind("direct=", 0) == 0) {
      run_direct = std::strtol(argv[i] + 7, nullptr, 10) != 0;
    } else if (arg.rfind("trace=", 0) == 0) {
      trace_path = std::string{arg.substr(6)};
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      topts.metrics_dir = std::string{arg.substr(14)};
    } else if (arg.rfind("--metrics-interval=", 0) == 0) {
      topts.metrics_interval = std::strtod(argv[i] + 19, nullptr);
    } else if (arg == "--trace-out") {
      trace_out_requested = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out_requested = true;
      topts.trace_path = std::string{arg.substr(12)};
    } else if (arg.rfind("--trace-filter=", 0) == 0) {
      topts.trace_filter = std::string{arg.substr(15)};
    } else if (arg == "--profile") {
      topts.profile = true;
    } else if (arg.rfind("--profile=", 0) == 0) {
      topts.profile = std::strtol(argv[i] + 10, nullptr, 10) != 0;
    } else if (arg == "--progress") {
      topts.progress = true;
    } else if (arg.rfind("--scenario=", 0) == 0) {
      scenario_arg = std::string{arg.substr(11)};
    } else if (arg.rfind("--pull-policy=", 0) == 0) {
      // Shared cross-driver flag name; equivalent to the pull= config key
      // but with the CLI-wide usage-error contract (exit 2).
      const std::string_view name = arg.substr(14);
      if (name == "uniform" || name == "non-empty") {
        pull_policy_override = p2p::PullPolicy::kUniformNonEmpty;
      } else if (name == "all") {
        pull_policy_override = p2p::PullPolicy::kUniformAll;
      } else if (name == "rarest" || name == "rarest-first") {
        pull_policy_override = p2p::PullPolicy::kRarestFirst;
      } else if (name == "deficit" || name == "deficit-weighted") {
        pull_policy_override = p2p::PullPolicy::kDeficitWeighted;
      } else {
        std::fprintf(stderr,
                     "--pull-policy=%.*s: unknown policy "
                     "(choices: uniform|all|rarest|deficit)\n",
                     static_cast<int>(name.size()), name.data());
        return 2;
      }
    } else if (arg.rfind("--gf-kernel=", 0) == 0) {
      const std::string_view kernel = arg.substr(12);
      if (!gf::Kernels::select_by_name(kernel)) {
        std::fprintf(stderr,
                     "--gf-kernel=%.*s: unknown or unsupported on this CPU "
                     "(choices: scalar|ssse3|avx2|auto)\n",
                     static_cast<int>(kernel.size()), kernel.data());
        return 1;
      }
    } else {
      cfg_args.push_back(arg);
    }
  }
  if (trace_out_requested && topts.trace_path.empty()) {
    if (topts.metrics_dir.empty()) {
      std::fprintf(stderr,
                   "--trace-out without a file needs --metrics-out=DIR "
                   "to place trace.jsonl in\n");
      return 1;
    }
    topts.trace_path = topts.metrics_dir + "/trace.jsonl";
  }
  if (topts.metrics_interval <= 0.0) {
    std::fprintf(stderr, "--metrics-interval must be > 0\n");
    return 1;
  }

  p2p::ProtocolConfig cfg;
  try {
    apply_config_args(cfg, cfg_args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\nprotocol keys:\n%s", e.what(),
                 config_args_help());
    return 1;
  }
  if (pull_policy_override) cfg.pull_policy = *pull_policy_override;

  // A scenario adjusts the config before the system is built; fault
  // windows and arrival profiles attach right after construction.
  std::unique_ptr<workload::ScenarioSpec> scenario;
  if (!scenario_arg.empty()) {
    try {
      scenario = std::make_unique<workload::ScenarioSpec>(
          workload::ScenarioSpec::parse(scenario_arg));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    using Kind = workload::ScenarioSpec::Kind;
    switch (scenario->kind) {
      case Kind::kByzantine:
        cfg.adversary.dishonest_fraction = scenario->dishonest_fraction;
        cfg.adversary.strategy = scenario->strategy;
        cfg.adversary.integrity_checks = scenario->integrity_checks;
        // Pollution needs bytes to pollute; give the blocks a payload
        // when the base config runs coefficients-only.
        if (cfg.payload_bytes == 0) cfg.payload_bytes = 32;
        break;
      case Kind::kFaults:
        break;  // attached to the network below
      case Kind::kTrace:
        if (scenario->mean_lifetime > 0.0) {
          cfg.churn.enabled = true;
          cfg.churn.mean_lifetime = scenario->mean_lifetime;
          cfg.churn.distribution = p2p::LifetimeDistribution::kLogNormal;
          cfg.churn.lognormal_sigma = scenario->lognormal_sigma;
        }
        break;
    }
  }

  std::printf("config: %s gf-kernel=%s\n", describe(cfg).c_str(),
              gf::Kernels::active().name);
  std::printf("running: warm-up %.1f, measure %.1f ...\n\n", warm, measure);

  CollectionSystem system{cfg};
  std::unique_ptr<workload::ArrivalProfile> arrival;
  if (scenario) {
    using Kind = workload::ScenarioSpec::Kind;
    if (scenario->kind == Kind::kFaults) {
      system.network().set_isolation_window(scenario->partition_fraction,
                                            scenario->partition_at,
                                            scenario->heal_at);
    } else if (scenario->kind == Kind::kTrace) {
      arrival = scenario->make_arrival_profile(cfg.lambda);
      system.network().set_arrival_profile(arrival.get());
    }
  }
  std::unique_ptr<obs::Telemetry> telemetry;
  if (topts.any_enabled()) {
    try {
      telemetry = std::make_unique<obs::Telemetry>(topts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "telemetry: %s\n", e.what());
      return 1;
    }
    system.attach_telemetry(*telemetry);
  }
  std::unique_ptr<stats::CsvWriter> trace_csv;
  if (!trace_path.empty()) {
    trace_csv = std::make_unique<stats::CsvWriter>(trace_path);
    trace_csv->write_row(
        {"t", "event", "slot", "segment_origin", "segment_seq", "aux"});
    // The legacy CSV trace chains in front of the telemetry ring so both
    // sinks see every event.
    system.network().set_trace_sink([&](const proto::TraceEvent& ev) {
      trace_csv->row()
          .add(ev.at)
          .add(proto::to_string(ev.kind))
          .add(ev.slot)
          .add(static_cast<std::uint64_t>(ev.segment.origin))
          .add(static_cast<std::uint64_t>(ev.segment.seq))
          .add(ev.aux)
          .end();
      if (telemetry) telemetry->trace().record(ev);
    });
  }
  system.warm_up(warm);
  system.run(measure);
  if (trace_csv) {
    trace_csv->flush();
    std::printf("trace: %zu events written to %s\n",
                trace_csv->rows_written() - 1, trace_path.c_str());
  }
  const CollectionReport r = system.report();

  std::printf("-- indirect collection --\n");
  std::printf("throughput (useful blocks/t)  %10.2f   normalized %.4f\n",
              r.throughput, r.normalized_throughput);
  std::printf("goodput (decoded blocks/t)    %10.2f   normalized %.4f\n",
              r.goodput, r.normalized_goodput);
  std::printf("capacity bound (c/lambda)     %10.4f\n", r.capacity_bound);
  std::printf("block delay                   %10.4f   segment delay %.4f "
              "(max %.3f)\n",
              r.mean_block_delay, r.mean_segment_delay, r.max_segment_delay);
  std::printf("blocks/peer (rho)             %10.3f   overhead %.3f "
              "(bound %.1f)\n",
              r.mean_blocks_per_peer, r.storage_overhead, r.overhead_bound);
  std::printf("segments injected/decoded/lost %llu / %llu / %llu\n",
              static_cast<unsigned long long>(r.segments_injected),
              static_cast<unsigned long long>(r.segments_decoded),
              static_cast<unsigned long long>(r.segments_lost));
  std::printf("pulls %llu (redundant %.1f%%)   CRC failures %llu\n",
              static_cast<unsigned long long>(r.server_pulls),
              100.0 * r.redundancy_fraction(),
              static_cast<unsigned long long>(r.payload_crc_failures));
  std::printf("saved for future delivery     %10.0f blocks (rank-exact)\n",
              r.saved.saved_original_blocks_rank);
  if (cfg.churn.enabled) {
    const auto dep = system.network().departed_data_stats();
    std::printf("departed peers %llu, their data recovered %.1f%%\n",
                static_cast<unsigned long long>(dep.departed_origins),
                100.0 * dep.recovery_fraction());
  }

  if (scenario) {
    // Machine-readable scenario summary (only with --scenario, so the
    // default output — and its golden pins — stays byte-identical).
    const auto& m = system.network().metrics();
    obs::JsonObject sj;
    sj.field_raw("spec", scenario->to_json())
        .field("dishonest_peers", system.network().dishonest_count())
        .field("blocks_corrupted", m.blocks_corrupted)
        .field("blocks_quarantined", m.blocks_quarantined)
        .field("polluted_pulls", m.polluted_pulls)
        .field("gossip_blocked_isolated", m.gossip_blocked_isolated)
        .field("pulls_blocked_isolated", m.pulls_blocked_isolated)
        .field("segments_injected", r.segments_injected)
        .field("segments_decoded", r.segments_decoded)
        .field("normalized_throughput", r.normalized_throughput);
    std::printf("\n-- scenario --\n%s\n", sj.str().c_str());
  }

  if (cfg.pull_policy != p2p::PullPolicy::kUniformNonEmpty &&
      cfg.pull_policy != p2p::PullPolicy::kUniformAll) {
    // Machine-readable scheduling summary (only for the feedback-driven
    // policies, so default output — and its golden pins — is untouched).
    obs::JsonObject pj;
    pj.field_str("policy", to_string(cfg.pull_policy))
        .field("pulls", r.server_pulls)
        .field("redundant_fraction", r.redundancy_fraction())
        .field("segments_injected", r.segments_injected)
        .field("segments_decoded", r.segments_decoded);
    if (const auto* trk = system.network().pull_tracker()) {
      pj.field("open_segments", trk->open_count())
          .field("suspended_segments", trk->suspended_count());
    }
    std::printf("\n-- pull-policy --\n%s\n", pj.str().c_str());
  }

  if (telemetry) {
    telemetry->write_summary(to_json(r));
    std::printf("\n-- telemetry --\n");
    if (telemetry->snapshots_enabled()) {
      std::printf("bundle: %s (%zu snapshots every %.3g)\n",
                  telemetry->options().metrics_dir.c_str(),
                  telemetry->snapshotter().samples(),
                  telemetry->snapshotter().interval());
    }
    if (!telemetry->options().trace_path.empty()) {
      std::printf("trace: %llu events to %s (%llu filtered out, "
                  "%llu overwritten in ring)\n",
                  static_cast<unsigned long long>(
                      telemetry->trace().accepted()),
                  telemetry->options().trace_path.c_str(),
                  static_cast<unsigned long long>(
                      telemetry->trace().filtered_out()),
                  static_cast<unsigned long long>(
                      telemetry->trace().overwritten()));
    }
    if (telemetry->profiler() != nullptr) {
      std::printf("%s", telemetry->profiler()->table().c_str());
    }
  }

  if (run_ode) {
    const auto sol = CollectionSystem::analyze(cfg);
    std::printf("\n-- fluid model (Sec. 3 ODEs) --\n");
    std::printf("converged=%d  residual=%.2e\n",
                static_cast<int>(sol.convergence.converged),
                sol.convergence.residual);
    std::printf("rho %.3f | eta %.4f | normalized thr %.4f | delay %.4f | "
                "saved/peer %.2f\n",
                sol.rho(), sol.collection_efficiency(),
                sol.normalized_throughput(), sol.block_delay(),
                sol.saved_blocks_per_peer());
  }

  if (run_direct) {
    p2p::DirectCollector dc{cfg};
    // The baseline shares the bundle directory under a "direct_" file
    // prefix, so one run yields a directly comparable pair of series.
    std::unique_ptr<obs::Telemetry> direct_tel;
    if (telemetry && telemetry->snapshots_enabled()) {
      obs::TelemetryOptions dopts;
      dopts.metrics_dir = topts.metrics_dir;
      dopts.metrics_interval = topts.metrics_interval;
      dopts.profile = topts.profile;
      dopts.file_prefix = "direct_";
      direct_tel = std::make_unique<obs::Telemetry>(dopts);
      p2p::register_direct_collector_metrics(direct_tel->registry(), dc);
      if (direct_tel->profiler() != nullptr) {
        dc.set_profiler(direct_tel->profiler());
      }
      direct_tel->snapshotter().start(dc.now());
    }
    auto run_direct_until = [&](double end) {
      if (!direct_tel) {
        dc.run_until(end);
        return;
      }
      auto& snap = direct_tel->snapshotter();
      while (true) {
        dc.run_until(std::min(end, snap.next_due()));
        snap.sample_if_due(dc.now());
        if (dc.now() >= end) break;
      }
    };
    run_direct_until(warm);
    dc.warm_up(dc.now());
    run_direct_until(dc.now() + measure);
    std::printf("\n-- direct baseline (Fig. 1a) --\n");
    std::printf("normalized throughput %.4f | delay %.4f | loss %.4f\n",
                dc.normalized_throughput(), dc.mean_delay(),
                dc.loss_fraction());
    if (direct_tel) {
      obs::JsonObject summary;
      summary.field("throughput", dc.throughput())
          .field("normalized_throughput", dc.normalized_throughput())
          .field("mean_delay", dc.mean_delay())
          .field("loss_fraction", dc.loss_fraction())
          .field("backlog", dc.backlog_size())
          .field("departed_recovery_fraction",
                 dc.departed_data_stats().recovery_fraction());
      direct_tel->write_summary(summary.str());
      std::printf("telemetry: %zu direct snapshots in %s\n",
                  direct_tel->snapshotter().samples(),
                  topts.metrics_dir.c_str());
    }
  }
  return 0;
}
