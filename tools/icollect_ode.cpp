/// \file icollect_ode.cpp
/// Standalone fluid-model evaluator: solve the Sec. 3 ODE systems for a
/// configuration and optionally sweep one parameter, printing every
/// Theorem 1-4 metric per point. No simulation is run — this is the
/// paper's analysis as a calculator.
///
///   icollect_ode lambda=20 mu=10 gamma=1 c=5 s=10
///   icollect_ode lambda=20 mu=10 c=5 sweep=s from=1 to=40 step=5
///   icollect_ode lambda=8 c=2 s=1 churn=2 sweep=mu from=2 to=18 step=4
///
/// Protocol-style keys (lambda, mu, gamma, c, s, churn) mirror the
/// simulator CLI; sweep=s|mu|c|lambda|gamma selects the swept axis.
/// --metrics-out=DIR writes the sweep as a machine-readable bundle
/// (config.json + sweep.jsonl, one JSON object per evaluated point).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "ode/closed_form.h"
#include "ode/indirect_ode.h"

namespace {

using icollect::ode::IndirectOde;
using icollect::ode::OdeParams;

void apply(OdeParams& p, const std::string& key, double v) {
  if (key == "lambda") {
    p.lambda = v;
  } else if (key == "mu") {
    p.mu = v;
  } else if (key == "gamma") {
    p.gamma = v;
  } else if (key == "c") {
    p.c = v;
  } else if (key == "s") {
    p.s = static_cast<std::size_t>(v);
  } else if (key == "B") {
    p.B = static_cast<std::size_t>(v);
  } else if (key == "churn") {
    p.churn_rate = v > 0.0 ? 1.0 / v : 0.0;  // given as mean lifetime
  } else {
    std::fprintf(stderr, "unknown key '%s'\n", key.c_str());
    std::exit(1);
  }
}

void print_header() {
  std::printf("%10s %8s %8s %8s %10s %8s %10s %8s\n", "point", "rho",
              "z0", "eta", "norm thr", "delay", "saved/pr", "conv");
}

void print_point(const std::string& label, const OdeParams& p,
                 std::ofstream* jsonl) {
  const auto sol = IndirectOde{p}.solve();
  std::printf("%10s %8.3f %8.5f %8.4f %10.4f %8.4f %10.3f %8s\n",
              label.c_str(), sol.rho(), sol.z0,
              sol.collection_efficiency(), sol.normalized_throughput(),
              sol.block_delay(), sol.saved_blocks_per_peer(),
              sol.convergence.converged ? "yes" : "NO");
  if (jsonl != nullptr && jsonl->is_open()) {
    icollect::obs::JsonObject o;
    o.field_str("point", label)
        .field("lambda", p.lambda)
        .field("mu", p.mu)
        .field("gamma", p.gamma)
        .field("c", p.c)
        .field("s", p.s)
        .field("rho", sol.rho())
        .field("z0", sol.z0)
        .field("eta", sol.collection_efficiency())
        .field("normalized_throughput", sol.normalized_throughput())
        .field("block_delay", sol.block_delay())
        .field("saved_blocks_per_peer", sol.saved_blocks_per_peer())
        .field("converged", sol.convergence.converged)
        .field("residual", sol.convergence.residual);
    *jsonl << o.str() << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  OdeParams p;
  std::string sweep;
  std::string metrics_dir;
  double from = 0.0;
  double to = 0.0;
  double step = 1.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg{argv[i]};
    if (arg == "-h" || arg == "--help") {
      std::printf(
          "usage: %s [key=value ...]\n"
          "keys: lambda mu gamma c s B churn(=E[L], 0 off)\n"
          "sweep: sweep=s|mu|c|lambda|gamma from=A to=B step=D\n"
          "output: --metrics-out=DIR (config.json + sweep.jsonl)\n",
          argv[0]);
      return 0;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_dir = arg.substr(14);
      continue;
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "expected key=value, got '%s'\n", arg.c_str());
      return 1;
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    if (key == "sweep") {
      sweep = value;
    } else if (key == "from") {
      from = std::strtod(value.c_str(), nullptr);
    } else if (key == "to") {
      to = std::strtod(value.c_str(), nullptr);
    } else if (key == "step") {
      step = std::strtod(value.c_str(), nullptr);
    } else {
      apply(p, key, std::strtod(value.c_str(), nullptr));
    }
  }

  try {
    p.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  std::printf(
      "fluid model: lambda=%.3g mu=%.3g gamma=%.3g c=%.3g s=%zu "
      "churn_rate=%.3g\n",
      p.lambda, p.mu, p.gamma, p.c, p.s, p.churn_rate);
  std::printf("closed forms (s=1): rho=%.3f overhead=%.3f thr=%.4f\n\n",
              icollect::ode::closed_form::rho(p.lambda, p.mu,
                                              p.gamma_eff()),
              icollect::ode::closed_form::storage_overhead(
                  p.lambda, p.mu, p.gamma_eff()),
              p.c > 0.0 ? icollect::ode::closed_form::
                              normalized_throughput_noncoding(
                                  p.lambda, p.mu, p.gamma_eff(), p.c)
                        : 0.0);

  std::ofstream sweep_jsonl;
  if (!metrics_dir.empty()) {
    std::filesystem::create_directories(metrics_dir);
    icollect::obs::JsonObject cfg;
    cfg.field("lambda", p.lambda)
        .field("mu", p.mu)
        .field("gamma", p.gamma)
        .field("c", p.c)
        .field("s", p.s)
        .field("B", p.B)
        .field("churn_rate", p.churn_rate)
        .field_str("sweep", sweep)
        .field("from", from)
        .field("to", to)
        .field("step", step);
    std::ofstream cfg_out{metrics_dir + "/config.json"};
    cfg_out << cfg.str() << '\n';
    sweep_jsonl.open(metrics_dir + "/sweep.jsonl");
    if (!sweep_jsonl) {
      std::fprintf(stderr, "cannot open %s/sweep.jsonl\n",
                   metrics_dir.c_str());
      return 1;
    }
  }

  print_header();
  if (sweep.empty()) {
    print_point("-", p, &sweep_jsonl);
    return 0;
  }
  if (step <= 0.0 || to < from) {
    std::fprintf(stderr, "bad sweep range\n");
    return 1;
  }
  for (double v = from; v <= to + 1e-9; v += step) {
    OdeParams q = p;
    apply(q, sweep, v);
    char label[32];
    std::snprintf(label, sizeof(label), "%s=%g", sweep.c_str(), v);
    print_point(label, q, &sweep_jsonl);
  }
  return 0;
}
