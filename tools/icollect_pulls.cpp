/// \file icollect_pulls.cpp
/// Pull-policy bench generator: the tables behind BENCH_pulls.json.
///
///   Table A — pulls-to-completion vs. pull policy (simulator): a
///     finite workload is injected for a fixed window, injection stops,
///     and the run drains until every injected segment is resolved
///     (decoded or lost to TTL). Each (s, N) point runs the uniform
///     control and the two feedback-driven policies (rarest-first,
///     deficit-weighted) over the same seeds, reporting total server
///     pulls at resolution, the collection (drain) time, decoded /
///     lost segment counts and the redundant-pull fraction. Uniform
///     pulls pay the coupon-collector tail — late pulls mostly land on
///     blocks of segments the servers already decoded — which is
///     exactly what the deficit feedback avoids.
///
///   Table B — the same comparison on the live wire protocol (loopback
///     cluster): every peer injects a fixed segment budget, the run
///     goes to completion, and the point reports pulls sent, completion
///     time, innovative-pull counts and the BUFFER_SUMMARY feedback
///     volume (summaries received, targeted pulls).
///
/// Every point aggregates R seeded replicas into mean / stddev / 95% CI
/// half-width (Student-t, runner::ci95_half_width) / min / max, so the
/// table carries honest error bars at small R.
///
///   icollect_pulls [--replicas R] [--seed S] [--out FILE] [--quick]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "node/cluster.h"
#include "obs/json.h"
#include "p2p/network.h"
#include "runner/aggregate.h"
#include "stats/summary.h"

namespace {

using namespace icollect;

/// One metric's replica aggregate, in the AggregateReport JSON idiom.
std::string summary_json(const stats::Summary& s) {
  obs::JsonObject o;
  o.field("mean", s.mean())
      .field("stddev", s.stddev())
      .field("ci95", runner::ci95_half_width(s))
      .field("min", s.min())
      .field("max", s.max());
  return o.str();
}

/// Named metric summaries, accumulated in insertion order so the output
/// is byte-stable across runs with the same seed.
class MetricTable {
 public:
  void add(std::string_view name, double value) {
    for (auto& [n, s] : rows_) {
      if (n == name) {
        s.add(value);
        return;
      }
    }
    rows_.emplace_back(std::string{name}, stats::Summary{});
    rows_.back().second.add(value);
  }

  [[nodiscard]] std::string to_json() const {
    obs::JsonObject o;
    for (const auto& [n, s] : rows_) o.field_raw(n, summary_json(s));
    return o.str();
  }

 private:
  std::vector<std::pair<std::string, stats::Summary>> rows_;
};

// --- Table A: pulls-to-completion vs. policy (simulator) ------------------

struct SimPointSpec {
  std::size_t segment_size;
  std::size_t num_peers;
};

p2p::ProtocolConfig sim_config(const SimPointSpec& point,
                               p2p::PullPolicy policy) {
  p2p::ProtocolConfig cfg;
  cfg.num_peers = point.num_peers;
  cfg.segment_size = point.segment_size;
  cfg.lambda = 8.0;
  cfg.mu = 8.0;
  cfg.gamma = 0.25;  // low TTL pressure: losses stay rare in every arm
  cfg.buffer_cap = 8 * point.segment_size;
  cfg.num_servers = 2;
  cfg.set_normalized_capacity(2.0);
  cfg.pull_policy = policy;
  // The paper's idealized collection-state process (Sec. 3): every pull
  // of an undecoded segment advances its state, so the only waste is
  // pulls landing on already-decoded segments — the coupon-collector
  // tail the feedback policies exist to avoid. Real-coding fidelity is
  // the wrong arm for this table: after injection stops its drain tail
  // is governed by span coverage per (peer, segment), which deficit
  // feedback cannot see.
  cfg.fidelity = p2p::CollectionFidelity::kStateCounter;
  return cfg;
}

std::string run_sim_arm(const SimPointSpec& point, p2p::PullPolicy policy,
                        std::uint64_t base_seed, std::uint64_t replicas,
                        double inject_time, double max_time) {
  MetricTable table;
  for (std::uint64_t r = 0; r < replicas; ++r) {
    p2p::ProtocolConfig cfg = sim_config(point, policy);
    cfg.seed = base_seed + r;
    p2p::Network net{cfg};
    net.run_until(inject_time);
    net.stop_injection();

    // Drain until every injected segment is resolved: decoded, or lost
    // to TTL before the servers could finish it. Under state-counter
    // fidelity any live copy advances an undecoded segment, so the
    // servers always finish the live population.
    const auto all_resolved = [&] {
      for (const auto& [id, info] : net.segment_registry()) {
        if (!info.decoded && !info.lost) return false;
      }
      return true;
    };
    double t = inject_time;
    while (!all_resolved() && t < max_time) {
      t += 0.25;
      net.run_until(t);
    }

    std::uint64_t decoded = 0;
    std::uint64_t lost = 0;
    for (const auto& [id, info] : net.segment_registry()) {
      decoded += info.decoded ? 1 : 0;
      lost += info.lost ? 1 : 0;
    }
    const auto& m = net.metrics();
    const double pulls = static_cast<double>(m.server_pull_attempts);
    const double innovative =
        static_cast<double>(m.innovative_pulls_window.count());
    table.add("pulls_to_completion", pulls);
    table.add("collection_time", net.now() - inject_time);
    table.add("segments_injected",
              static_cast<double>(net.segment_registry().size()));
    table.add("segments_decoded", static_cast<double>(decoded));
    table.add("segments_lost", static_cast<double>(lost));
    table.add("redundant_fraction",
              pulls > 0.0 ? 1.0 - innovative / pulls : 0.0);
  }

  obs::JsonObject o;
  o.field_str("policy", to_string(policy))
      .field_raw("metrics", table.to_json());
  return o.str();
}

// --- Table B: pulls-to-completion vs. policy (loopback cluster) -----------

struct ClusterPointSpec {
  std::size_t segment_size;
  std::size_t num_peers;
  std::size_t segments_per_peer;
};

node::ClusterConfig cluster_config(const ClusterPointSpec& point,
                                   proto::PullPolicyKind policy) {
  node::ClusterConfig cfg;
  cfg.num_peers = point.num_peers;
  cfg.num_servers = 2;
  cfg.segment_size = point.segment_size;
  cfg.buffer_cap = 8 * point.segment_size;
  cfg.payload_bytes = 16;
  cfg.lambda = 6.0;
  cfg.mu = 6.0;
  cfg.gamma = 0.5;
  cfg.server_rate = 16.0;
  cfg.segments_per_peer = point.segments_per_peer;
  cfg.retain_own_until_acked = true;
  cfg.pull_policy = policy;
  return cfg;
}

std::string run_cluster_arm(const ClusterPointSpec& point,
                            proto::PullPolicyKind policy,
                            std::uint64_t base_seed, std::uint64_t replicas,
                            double max_time) {
  MetricTable table;
  for (std::uint64_t r = 0; r < replicas; ++r) {
    node::ClusterConfig cfg = cluster_config(point, policy);
    cfg.seed = base_seed + r;
    cfg.net.seed = cfg.seed;
    node::LoopbackCluster cluster{cfg};
    const bool complete = cluster.run_to_completion(max_time);

    std::uint64_t summaries = 0;
    std::uint64_t targeted = 0;
    for (std::size_t i = 0; i < cfg.num_servers; ++i) {
      summaries += cluster.server(i).summaries_received();
      targeted += cluster.server(i).targeted_pulls();
    }
    const double pulls = static_cast<double>(cluster.pulls_sent());
    table.add("complete", complete ? 1.0 : 0.0);
    table.add("pulls_to_completion", pulls);
    table.add("collection_time", cluster.now());
    table.add("segments_decoded",
              static_cast<double>(cluster.segments_decoded()));
    table.add("innovative_pulls",
              static_cast<double>(cluster.innovative_pulls()));
    table.add("summaries_received", static_cast<double>(summaries));
    table.add("targeted_pulls", static_cast<double>(targeted));
  }

  obs::JsonObject o;
  o.field_str("policy", proto::to_string(policy))
      .field_raw("metrics", table.to_json());
  return o.str();
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --replicas R   seeded replicas per point (default 10)\n"
      "  --seed S       base seed (default 1)\n"
      "  --out FILE     write JSON to FILE (default stdout)\n"
      "  --quick        2 replicas, smaller grid (CI smoke)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t replicas = 10;
  std::uint64_t seed = 1;
  std::string out_path;
  bool quick = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--replicas") {
      replicas = std::strtoull(value("--replicas"), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(value("--seed"), nullptr, 10);
    } else if (arg == "--out") {
      out_path = value("--out");
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                   std::string{arg}.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (quick) replicas = 2;
  if (replicas == 0) {
    std::fprintf(stderr, "%s: --replicas must be >= 1\n", argv[0]);
    return 2;
  }

  constexpr p2p::PullPolicy kSimArms[] = {
      p2p::PullPolicy::kUniformNonEmpty,
      p2p::PullPolicy::kRarestFirst,
      p2p::PullPolicy::kDeficitWeighted,
  };
  constexpr proto::PullPolicyKind kClusterArms[] = {
      proto::PullPolicyKind::kUniform,
      proto::PullPolicyKind::kRarestFirst,
      proto::PullPolicyKind::kDeficitWeighted,
  };

  std::string body;
  body += "{\n";
  body += "  \"schema\": \"icollect-pulls-bench-v1\",\n";
  body += "  \"replicas\": " + std::to_string(replicas) + ",\n";
  body += "  \"base_seed\": " + std::to_string(seed) + ",\n";

  // Table A.
  {
    const double inject_time = 2.0;
    const double max_time = quick ? 120.0 : 400.0;
    const p2p::ProtocolConfig base = sim_config({4, 30}, kSimArms[0]);
    obs::JsonObject cfg_json;
    cfg_json.field("lambda", base.lambda)
        .field("mu", base.mu)
        .field("gamma", base.gamma)
        .field("servers", static_cast<std::uint64_t>(base.num_servers))
        .field("normalized_capacity", base.normalized_capacity())
        .field("inject_time", inject_time)
        .field("max_time", max_time);
    body += "  \"simulator\": {\n";
    body += "    \"config\": " + cfg_json.str() + ",\n";
    body += "    \"points\": [\n";
    std::vector<SimPointSpec> grid = {{4, 30}, {8, 30}, {4, 60}};
    if (quick) grid = {{4, 30}};
    bool first = true;
    for (const SimPointSpec& point : grid) {
      for (const p2p::PullPolicy policy : kSimArms) {
        std::fprintf(stderr, "sim: s=%zu N=%zu policy=%s ...\n",
                     point.segment_size, point.num_peers, to_string(policy));
        obs::JsonObject o;
        o.field("s", static_cast<std::uint64_t>(point.segment_size))
            .field("peers", static_cast<std::uint64_t>(point.num_peers));
        std::string arm = run_sim_arm(point, policy, seed, replicas,
                                      inject_time, max_time);
        // Splice the (s, N) identity into the arm object.
        const std::string id = o.str();
        arm.insert(1, id.substr(1, id.size() - 2) + ",");
        if (!first) body += ",\n";
        first = false;
        body += "      " + arm;
      }
    }
    body += "\n    ]\n  },\n";
  }

  // Table B.
  {
    const double max_time = 600.0;
    const node::ClusterConfig base =
        cluster_config({4, 12, 3}, kClusterArms[0]);
    obs::JsonObject cfg_json;
    cfg_json.field("lambda", base.lambda)
        .field("mu", base.mu)
        .field("gamma", base.gamma)
        .field("servers", static_cast<std::uint64_t>(base.num_servers))
        .field("server_rate", base.server_rate)
        .field("payload_bytes",
               static_cast<std::uint64_t>(base.payload_bytes))
        .field("max_time", max_time);
    body += "  \"cluster\": {\n";
    body += "    \"config\": " + cfg_json.str() + ",\n";
    body += "    \"points\": [\n";
    std::vector<ClusterPointSpec> grid = {{4, 12, 3}, {5, 16, 2}};
    if (quick) grid = {{4, 12, 2}};
    bool first = true;
    for (const ClusterPointSpec& point : grid) {
      for (const proto::PullPolicyKind policy : kClusterArms) {
        std::fprintf(stderr, "cluster: s=%zu N=%zu policy=%s ...\n",
                     point.segment_size, point.num_peers,
                     proto::to_string(policy));
        obs::JsonObject o;
        o.field("s", static_cast<std::uint64_t>(point.segment_size))
            .field("peers", static_cast<std::uint64_t>(point.num_peers))
            .field("segments_per_peer",
                   static_cast<std::uint64_t>(point.segments_per_peer));
        std::string arm =
            run_cluster_arm(point, policy, seed, replicas, max_time);
        const std::string id = o.str();
        arm.insert(1, id.substr(1, id.size() - 2) + ",");
        if (!first) body += ",\n";
        first = false;
        body += "      " + arm;
      }
    }
    body += "\n    ]\n  }\n";
  }
  body += "}\n";

  if (out_path.empty()) {
    std::fputs(body.c_str(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "%s: cannot open %s: %s\n", argv[0],
                 out_path.c_str(), std::strerror(errno));
    return 2;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu bytes)\n", out_path.c_str(), body.size());
  return 0;
}
