#!/usr/bin/env python3
"""End-to-end smoke for the hostile-scenario pack (docs/SCENARIOS.md).

Runs one instance of each scenario class — byzantine, faults, trace —
through BOTH drivers (the event simulator `icollect_sim` and the live
loopback cluster `icollect_cluster`) with a fixed seed, parses the
machine-readable scenario summary each tool emits only under
--scenario, and validates its schema and the class-specific invariants:

  byzantine  corruption happened, the integrity layer quarantined it,
             and the honest population still completed / decoded;
  faults     the partition blackholed traffic (fault drops > 0) and the
             run recovered without a single send-queue refusal;
  trace      the shaped arrival profile drove a normal, complete run.

Also re-runs the cluster byzantine scenario to assert byte-identical
output under the same seed, and (with --validate) schema-checks the
committed BENCH_scenarios.json table.

Usage:
  check_scenarios.py <icollect_sim> <icollect_cluster>
  check_scenarios.py --validate <BENCH_scenarios.json>
"""

import json
import subprocess
import sys

SIM_BASE = [
    "peers=24", "lambda=8", "s=4", "mu=8", "gamma=1", "buffer=32",
    "servers=2", "server_rate=24", "payload=16", "seed=7", "warm=1",
    "measure=6", "ode=0", "direct=0", "--gf-kernel=scalar",
]

CLUSTER_BASE = [
    "--peers", "8", "--servers", "2", "--segment-size", "3",
    "--buffer-cap", "24", "--payload-bytes", "16",
    "--segments-per-peer", "2", "--seed", "9", "--max-time", "300",
]

SIM_SCENARIO_KEYS = {
    "spec", "dishonest_peers", "blocks_corrupted", "blocks_quarantined",
    "polluted_pulls", "gossip_blocked_isolated", "pulls_blocked_isolated",
    "segments_injected", "segments_decoded", "normalized_throughput",
}

CLUSTER_SCENARIO_KEYS = {
    "spec", "dishonest_peers", "honest_complete",
    "honest_segments_injected", "blocks_corrupted", "blocks_quarantined",
    "polluted_pulls", "fault_drops", "queue_refusals",
}


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run(cmd: list[str], expect_exit: int = 0) -> str:
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, check=False)
    if proc.returncode != expect_exit:
        sys.stderr.buffer.write(proc.stdout + proc.stderr)
        fail(f"exit {proc.returncode} (expected {expect_exit}): "
             f"{' '.join(cmd)}")
    return proc.stdout.decode()


def check(cond: bool, what: str) -> None:
    if not cond:
        fail(what)
    print(f"  ok: {what}")


def sim_scenario(out: str) -> dict:
    """The JSON object printed after the '-- scenario --' banner."""
    lines = out.splitlines()
    for i, line in enumerate(lines):
        if line.strip() == "-- scenario --":
            return json.loads(lines[i + 1])
    fail("sim output has no '-- scenario --' section")
    raise AssertionError  # unreachable


def cluster_json(out: str) -> dict:
    """The cluster's final JSON report (last non-empty stdout line)."""
    for line in reversed(out.splitlines()):
        if line.strip().startswith("{"):
            return json.loads(line)
    fail("cluster output has no JSON report line")
    raise AssertionError  # unreachable


def check_sim(sim: str) -> None:
    print("== simulator ==")

    print("byzantine:")
    s = sim_scenario(run(
        [sim, *SIM_BASE, "--scenario=byzantine:fraction=0.25,checks=2"]))
    check(set(s) == SIM_SCENARIO_KEYS, "scenario summary schema")
    check(s["spec"]["scenario"] == "byzantine", "spec names the class")
    check(s["dishonest_peers"] == 6, "floor(24 * 0.25) dishonest peers")
    check(s["blocks_corrupted"] > 0, "corruption happened")
    check(s["blocks_quarantined"] + s["polluted_pulls"] > 0,
          "integrity layer quarantined polluted blocks")
    check(s["segments_decoded"] > 0, "honest data still decoded")

    print("faults:")
    s = sim_scenario(run(
        [sim, *SIM_BASE, "--scenario=faults:fraction=0.25,at=2,heal=4"]))
    check(set(s) == SIM_SCENARIO_KEYS, "scenario summary schema")
    check(s["spec"]["scenario"] == "faults", "spec names the class")
    check(s["gossip_blocked_isolated"] > 0,
          "partition blackholed gossip")
    check(s["segments_decoded"] > 0, "collection recovered after heal")

    print("trace:")
    s = sim_scenario(run(
        [sim, *SIM_BASE,
         "--scenario=trace:amplitude=0.8,period=10,burst=3,"
         "burst-at=2,burst-len=3"]))
    check(set(s) == SIM_SCENARIO_KEYS, "scenario summary schema")
    check(s["spec"]["scenario"] == "trace", "spec names the class")
    check(s["dishonest_peers"] == 0, "trace replay is all-honest")
    check(s["segments_injected"] > 0, "shaped profile injected data")
    check(s["segments_decoded"] > 0, "collection proceeded")


def check_cluster(cluster: str) -> None:
    print("== cluster ==")

    print("byzantine:")
    byz_cmd = [cluster, *CLUSTER_BASE,
               "--scenario", "byzantine:fraction=0.25,checks=2"]
    out = run(byz_cmd)
    r = cluster_json(out)
    s = r["scenario"]
    check(set(s) == CLUSTER_SCENARIO_KEYS, "scenario summary schema")
    check(s["spec"]["scenario"] == "byzantine", "spec names the class")
    check(s["dishonest_peers"] == 2, "floor(8 * 0.25) dishonest peers")
    check(s["honest_complete"] is True, "honest majority completed")
    check(s["blocks_corrupted"] > 0, "corruption happened")
    check(s["blocks_quarantined"] + s["polluted_pulls"] > 0,
          "integrity layer quarantined polluted blocks")

    print("byzantine determinism:")
    check(run(byz_cmd) == out, "same seed, byte-identical rerun")

    print("faults:")
    r = cluster_json(run(
        [cluster, *CLUSTER_BASE,
         "--scenario", "faults:fraction=0.25,at=1,heal=3"]))
    s = r["scenario"]
    check(set(s) == CLUSTER_SCENARIO_KEYS, "scenario summary schema")
    check(s["spec"]["scenario"] == "faults", "spec names the class")
    check(r["complete"] is True, "partition healed and run completed")
    check(s["fault_drops"] > 0, "partition blackholed traffic")
    check(s["queue_refusals"] == 0, "send-queue caps never violated")

    print("trace:")
    r = cluster_json(run(
        [cluster, *CLUSTER_BASE,
         "--scenario", "trace:amplitude=0.5,period=20,burst=2,"
         "burst-at=1,burst-len=2"]))
    s = r["scenario"]
    check(set(s) == CLUSTER_SCENARIO_KEYS, "scenario summary schema")
    check(s["spec"]["scenario"] == "trace", "spec names the class")
    check(r["complete"] is True, "shaped run completed")
    check(r["segments_injected"] == 16, "full injection budget spent")

    print("bad spec rejected:")
    run([cluster, *CLUSTER_BASE, "--scenario", "byzantine:fraction=2"],
        expect_exit=2)
    print("  ok: out-of-range fraction exits 2")


def validate_bench(path: str) -> None:
    """Schema gate for the committed BENCH_scenarios.json."""
    with open(path, encoding="utf-8") as f:
        d = json.load(f)
    check(d.get("schema") == "icollect-scenario-bench-v1",
          "schema tag present")
    check(d["replicas"] >= 2, "at least two replicas per point")

    def check_metrics(metrics: dict, names: set) -> None:
        check(set(metrics) >= names, f"metric names cover {sorted(names)}")
        for name, m in metrics.items():
            check(set(m) == {"mean", "stddev", "ci95", "min", "max"},
                  f"{name} has mean/stddev/ci95/min/max")

    tab = d["pollution_vs_honest_fraction"]
    check(len(tab["points"]) >= 4, "pollution table has >= 4 points")
    for p in tab["points"]:
        check(0.0 <= p["dishonest_fraction"] <= 1.0,
              "dishonest fraction in range")
        check(p["arm"] in ("defended", "undefended"), "arm is labelled")
        check_metrics(p["metrics"],
                      {"blocks_corrupted", "blocks_quarantined",
                       "polluted_pull_fraction", "payload_crc_failures",
                       "normalized_throughput"})
        if p["arm"] == "defended" and p["dishonest_fraction"] > 0:
            check(p["metrics"]["payload_crc_failures"]["max"] == 0,
                  "defended arm: no pollution reached the decoders")

    tab = d["collection_time_vs_fault_severity"]
    check(len(tab["points"]) >= 3, "fault table has >= 3 points")
    for p in tab["points"]:
        check_metrics(p["metrics"],
                      {"complete", "completion_time", "fault_drops",
                       "queue_refusals"})
        check(p["metrics"]["queue_refusals"]["max"] == 0,
              "send-queue caps held at every severity")
        check(p["metrics"]["complete"]["min"] == 1,
              "every replica completed")


def main() -> int:
    argv = sys.argv[1:]
    if len(argv) == 2 and argv[0] == "--validate":
        validate_bench(argv[1])
        print("bench table OK")
        return 0
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    sim, cluster = argv
    check_sim(sim)
    check_cluster(cluster)
    print("scenario smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
