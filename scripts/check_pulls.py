#!/usr/bin/env python3
"""End-to-end smoke for the pull-scheduling subsystem (docs/PULL_POLICIES.md).

Runs each pull policy through BOTH drivers (the event simulator
`icollect_sim` and the live loopback cluster `icollect_cluster`) with a
fixed seed and validates the machine-readable scheduling summary each
tool emits only for the feedback-driven policies:

  uniform   no scheduling block at all — the default output (and its
            golden pins) must be untouched;
  rarest    the '-- pull-policy --' / "pull_policy" block appears, the
            feedback loop ran (summaries flowed live), and reruns under
            the same seed are byte-identical;
  deficit   same, under deficit-weighted sampling.

Every CLI (including `icollect_node`) must reject an unknown policy
name with exit 2. With --validate, schema-checks the committed
BENCH_pulls.json table, including the headline claim: both feedback
policies beat uniform on mean pulls-to-completion with non-overlapping
95% CIs in at least one point per driver.

Usage:
  check_pulls.py <icollect_sim> <icollect_cluster> <icollect_node>
  check_pulls.py --validate <BENCH_pulls.json>
"""

import json
import subprocess
import sys

SIM_BASE = [
    "peers=24", "lambda=8", "s=4", "mu=8", "gamma=1", "buffer=32",
    "servers=2", "server_rate=24", "seed=7", "warm=1",
    "measure=6", "ode=0", "direct=0", "--gf-kernel=scalar",
]

CLUSTER_BASE = [
    "--peers", "8", "--servers", "2", "--segment-size", "3",
    "--buffer-cap", "24", "--payload-bytes", "16",
    "--segments-per-peer", "2", "--seed", "9", "--max-time", "300",
]

SIM_POLICY_KEYS = {
    "policy", "pulls", "redundant_fraction", "segments_injected",
    "segments_decoded", "open_segments", "suspended_segments",
}

CLUSTER_POLICY_KEYS = {"policy", "summaries_received", "targeted_pulls"}

SUMMARY_KEYS = {"mean", "stddev", "ci95", "min", "max"}


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run(cmd: list[str], expect_exit: int = 0) -> str:
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, check=False)
    if proc.returncode != expect_exit:
        sys.stderr.buffer.write(proc.stdout + proc.stderr)
        fail(f"exit {proc.returncode} (expected {expect_exit}): "
             f"{' '.join(cmd)}")
    return proc.stdout.decode()


def check(cond: bool, what: str) -> None:
    if not cond:
        fail(what)
    print(f"  ok: {what}")


def sim_policy_block(out: str) -> dict | None:
    """The JSON object after the '-- pull-policy --' banner, if any."""
    lines = out.splitlines()
    for i, line in enumerate(lines):
        if line.strip() == "-- pull-policy --":
            return json.loads(lines[i + 1])
    return None


def cluster_json(out: str) -> dict:
    for line in reversed(out.splitlines()):
        if line.strip().startswith("{"):
            return json.loads(line)
    fail("cluster output has no JSON report line")
    raise AssertionError  # unreachable


def check_sim(sim: str) -> None:
    print("== simulator ==")

    print("uniform:")
    out = run([sim, *SIM_BASE])
    check(sim_policy_block(out) is None,
          "default output carries no pull-policy block")

    print("rarest:")
    cmd = [sim, *SIM_BASE, "--pull-policy=rarest"]
    out = run(cmd)
    s = sim_policy_block(out)
    check(s is not None, "pull-policy block present")
    check(set(s) == SIM_POLICY_KEYS, "pull-policy block schema")
    check(s["policy"] == "rarest-first", "policy is named")
    check(s["pulls"] > 0, "servers pulled")
    check(0.0 <= s["redundant_fraction"] <= 1.0,
          "redundant fraction in range")

    print("rarest determinism:")
    check(run(cmd) == out, "same seed, byte-identical rerun")

    print("deficit (via config key):")
    s = sim_policy_block(run([sim, *SIM_BASE, "pull=deficit"]))
    check(s is not None and s["policy"] == "deficit-weighted",
          "pull=deficit selects deficit-weighted")

    print("bad policy rejected:")
    run([sim, *SIM_BASE, "--pull-policy=round-robin"], expect_exit=2)
    print("  ok: unknown policy exits 2")


def check_cluster(cluster: str, node: str) -> None:
    print("== cluster ==")

    print("uniform:")
    r = cluster_json(run([cluster, *CLUSTER_BASE]))
    check("pull_policy" not in r,
          "default report carries no pull_policy block")
    check(r["complete"] is True, "uniform run completed")

    print("rarest:")
    cmd = [cluster, *CLUSTER_BASE, "--pull-policy", "rarest"]
    out = run(cmd)
    r = cluster_json(out)
    s = r.get("pull_policy")
    check(s is not None, "pull_policy block present")
    check(set(s) == CLUSTER_POLICY_KEYS, "pull_policy block schema")
    check(s["policy"] == "rarest", "policy is named")
    check(s["summaries_received"] > 0, "BUFFER_SUMMARY feedback flowed")
    check(r["complete"] is True, "rarest run completed")

    print("rarest determinism:")
    check(run(cmd) == out, "same seed, byte-identical rerun")

    print("deficit:")
    r = cluster_json(run(
        [cluster, *CLUSTER_BASE, "--pull-policy", "deficit-weighted"]))
    check(r["pull_policy"]["policy"] == "deficit",
          "long form selects deficit-weighted")
    check(r["complete"] is True, "deficit run completed")

    print("bad policy rejected:")
    run([cluster, *CLUSTER_BASE, "--pull-policy", "round-robin"],
        expect_exit=2)
    print("  ok: cluster rejects unknown policy with exit 2")
    run([node, "--pull-policy", "round-robin"], expect_exit=2)
    print("  ok: node rejects unknown policy with exit 2")


def validate_bench(path: str) -> None:
    """Schema + separation gate for the committed BENCH_pulls.json."""
    with open(path, encoding="utf-8") as f:
        d = json.load(f)
    check(d.get("schema") == "icollect-pulls-bench-v1",
          "schema tag present")
    check(d["replicas"] >= 2, "at least two replicas per point")

    uniform_names = {"uniform", "uniform-non-empty"}
    feedback_names = {"rarest", "rarest-first", "deficit",
                      "deficit-weighted"}

    for table in ("simulator", "cluster"):
        tab = d[table]
        check(len(tab["points"]) >= 3, f"{table} table has >= 3 points")
        separated = set()
        by_point: dict[tuple, dict[str, dict]] = {}
        for p in tab["points"]:
            m = p["metrics"]
            for name, summary in m.items():
                check(set(summary) == SUMMARY_KEYS,
                      f"{table} {name} has mean/stddev/ci95/min/max")
            check("pulls_to_completion" in m,
                  f"{table} point reports pulls_to_completion")
            ident = (p["s"], p["peers"], p.get("segments_per_peer"))
            by_point.setdefault(ident, {})[p["policy"]] = m
        for ident, arms in by_point.items():
            uniform = next((arms[n] for n in uniform_names if n in arms),
                           None)
            check(uniform is not None,
                  f"{table} point {ident} has a uniform control")
            hi = (uniform["pulls_to_completion"]["mean"] -
                  uniform["pulls_to_completion"]["ci95"])
            for name, m in arms.items():
                if name in uniform_names:
                    continue
                check(name in feedback_names,
                      f"{table} arm {name} is a known policy")
                lo = (m["pulls_to_completion"]["mean"] +
                      m["pulls_to_completion"]["ci95"])
                if lo < hi:
                    separated.add(name.split("-")[0])
        check(len(separated) >= 2,
              f"{table}: both feedback policies beat uniform with "
              "non-overlapping 95% CIs in at least one point")


def main() -> int:
    argv = sys.argv[1:]
    if len(argv) == 2 and argv[0] == "--validate":
        validate_bench(argv[1])
        print("bench table OK")
        return 0
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    sim, cluster, node = argv
    check_sim(sim)
    check_cluster(cluster, node)
    print("pull-policy smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
