#!/usr/bin/env python3
"""End-to-end determinism check of the sweep CLI across worker counts.

Runs `icollect_sweep` twice with identical (seed, grid, replicas) but
different `--jobs` values, then asserts:

  * both runs exit cleanly and emit one JSONL row per grid cell;
  * every row parses and carries the contract keys (cell, label, seed,
    replicas, config, aggregate with per-metric mean/stddev/ci95);
  * the two output files are BYTE-identical — the replica engine's
    central promise: the worker count must never influence results;
  * a third run with a different seed differs (the comparison is not
    vacuously passing on constant output).

Usage: check_sweep.py /path/to/icollect_sweep
Exits nonzero with a message on the first failed check.
"""

import json
import os
import subprocess
import sys
import tempfile

GRID = [
    "--grid-s=1,4",
    "--grid-c=2,4",
    "--replicas=3",
    "--warm=1",
    "--measure=2",
    "peers=30",
    "lambda=10",
    "mu=5",
]
EXPECTED_CELLS = 4  # |grid-s| x |grid-c|

AGGREGATE_STAT_KEYS = {"mean", "stddev", "ci95", "min", "max"}


def fail(msg):
    print(f"check_sweep: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_sweep(binary, out, seed, jobs):
    cmd = [binary, f"--seed={seed}", f"--jobs={jobs}", f"--out={out}", *GRID]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    with open(out, "rb") as f:
        return f.read()


def check_rows(raw):
    lines = raw.decode("utf-8").strip().split("\n")
    if len(lines) != EXPECTED_CELLS:
        fail(f"expected {EXPECTED_CELLS} JSONL rows, got {len(lines)}")
    for i, line in enumerate(lines):
        try:
            row = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"row {i} is not valid JSON: {e}")
        for key in ("cell", "label", "seed", "replicas", "config",
                    "aggregate"):
            if key not in row:
                fail(f"row {i} missing key '{key}'")
        if row["cell"] != i:
            fail(f"row {i} carries cell index {row['cell']}")
        agg = row["aggregate"]
        if agg.get("replicas") != row["replicas"]:
            fail(f"row {i}: aggregate replica count mismatch")
        metrics = agg.get("metrics", {})
        if "normalized_throughput" not in metrics:
            fail(f"row {i}: aggregate missing normalized_throughput")
        for name, stats in metrics.items():
            missing = AGGREGATE_STAT_KEYS - set(stats)
            if missing:
                fail(f"row {i}: metric '{name}' missing {sorted(missing)}")


def main():
    if len(sys.argv) != 2:
        fail("usage: check_sweep.py /path/to/icollect_sweep")
    binary = sys.argv[1]
    if not os.path.exists(binary):
        fail(f"sweep binary not found: {binary} (build the repo first)")

    with tempfile.TemporaryDirectory(prefix="icollect_sweep_check_") as tmp:
        serial = run_sweep(binary, os.path.join(tmp, "j1.jsonl"), 42, 1)
        parallel = run_sweep(binary, os.path.join(tmp, "j8.jsonl"), 42, 8)
        reseeded = run_sweep(binary, os.path.join(tmp, "j8b.jsonl"), 43, 8)

    check_rows(serial)
    if serial != parallel:
        fail("--jobs=1 and --jobs=8 outputs differ: the replica engine "
             "broke its byte-determinism contract")
    if serial == reseeded:
        fail("changing --seed did not change the output: the determinism "
             "comparison is vacuous")
    print(f"check_sweep: OK ({EXPECTED_CELLS} cells byte-identical across "
          "--jobs=1/8; seed sensitivity confirmed)")


if __name__ == "__main__":
    main()
