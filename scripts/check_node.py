#!/usr/bin/env python3
"""End-to-end validation of the live node runtime.

Three layers of checks:

  1. Loopback cluster (icollect_cluster): a 8-peer/2-server collection
     must complete with every injected segment decoded, twice with the
     same seed producing an identical summary (determinism), and the
     metrics JSONL must parse with sane, nondecreasing time.
  2. Real TCP (icollect_node): one server + two peer processes on
     127.0.0.1 must finish a collection — every peer exits 0 once all
     its segments are ACKed, the server exits 0 once it decoded them.
  3. CLI contract: malformed invocations (unknown flag, missing role,
     no endpoints) must exit nonzero with a usage message, not start.

Usage: check_node.py /path/to/icollect_cluster /path/to/icollect_node
Exits nonzero with a message on the first failed check.
"""

import json
import os
import socket
import subprocess
import sys
import tempfile


def fail(msg):
    print(f"check_node: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check(cond, msg):
    if not cond:
        fail(msg)


def free_port():
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def parse_jsonl(path, what):
    check(os.path.exists(path), f"missing {what} at {path}")
    rows = []
    with open(path) as f:
        for i, line in enumerate(f):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as e:
                fail(f"{what} line {i + 1} is not JSON: {e}")
    check(rows, f"{what} is empty")
    return rows


def check_cluster(cluster_bin, tmp):
    metrics = os.path.join(tmp, "cluster_metrics.jsonl")
    cmd = [
        cluster_bin,
        "--peers", "8", "--servers", "2", "--segments-per-peer", "3",
        "--lambda", "6", "--mu", "4", "--gamma", "1",
        "--server-rate", "24", "--max-time", "300", "--seed", "5",
        "--metrics-out", metrics, "--metrics-interval", "0.5",
    ]

    def run():
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=240)
        check(proc.returncode == 0,
              f"cluster run failed (exit {proc.returncode}): {proc.stderr}")
        try:
            return json.loads(proc.stdout)
        except json.JSONDecodeError as e:
            fail(f"cluster summary is not JSON: {e}\n{proc.stdout}")

    summary = run()
    check(summary["complete"] is True, "cluster did not complete")
    check(summary["segments_injected"] == 8 * 3,
          f"expected 24 injected, got {summary['segments_injected']}")
    check(summary["segments_decoded"] == summary["segments_injected"],
          "decoded != injected")
    check(summary["innovative_pulls"] >= summary["segments_injected"],
          "implausibly few innovative pulls")

    rows = parse_jsonl(metrics, "cluster metrics JSONL")
    times = [r["t"] for r in rows]
    check(times == sorted(times), "metrics time column not nondecreasing")
    check("cluster.segments_decoded" in rows[-1],
          "metrics rows missing cluster.* gauges")
    check(rows[-1]["cluster.segments_decoded"] == 24,
          "final metrics row disagrees with the summary")

    # Same seed, same run — the loopback cluster is deterministic.
    check(run() == summary, "identical seeds produced different summaries")
    print("check_node: loopback cluster OK "
          f"(t={summary['t']:.2f}, decoded={summary['segments_decoded']})")


def check_tcp(node_bin, tmp):
    server_port = free_port()
    peer_port = free_port()
    server_metrics = os.path.join(tmp, "server_metrics.jsonl")
    common = ["--segment-size", "4", "--payload-bytes", "32",
              "--gamma", "0.2", "--seed", "9", "--duration", "60"]
    server = subprocess.Popen(
        [node_bin, "--role", "server",
         "--listen", f"127.0.0.1:{server_port}",
         "--expect-segments", "4", "--pull-rate", "50",
         "--metrics-out", server_metrics] + common,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    peer1 = subprocess.Popen(
        [node_bin, "--role", "peer",
         "--listen", f"127.0.0.1:{peer_port}",
         "--connect", f"127.0.0.1:{server_port}",
         "--segments", "2", "--lambda", "8", "--mu", "6"] + common,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    peer2 = subprocess.Popen(
        [node_bin, "--role", "peer",
         "--connect", f"127.0.0.1:{server_port}",
         "--connect", f"127.0.0.1:{peer_port}",
         "--segments", "2", "--lambda", "8", "--mu", "6"] + common,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)

    procs = {"server": server, "peer1": peer1, "peer2": peer2}
    for name, proc in procs.items():
        try:
            _, err = proc.communicate(timeout=120)
        except subprocess.TimeoutExpired:
            for p in procs.values():
                p.kill()
            fail(f"{name} did not finish within the wall-clock budget")
        check(proc.returncode == 0,
              f"{name} exited {proc.returncode}: {err}")

    rows = parse_jsonl(server_metrics, "server metrics JSONL")
    check(any(r.get("node.segments_decoded", 0) >= 4 for r in rows),
          "server metrics never reached 4 decoded segments")
    print("check_node: real-TCP collection OK (4 segments over "
          f"port {server_port})")


def check_cli_errors(cluster_bin, node_bin):
    cases = [
        ([cluster_bin, "--bogus-flag"], "unknown cluster flag"),
        ([cluster_bin, "--peers"], "missing cluster flag value"),
        ([cluster_bin, "--segments-per-peer", "0"], "zero budget"),
        ([node_bin], "missing role"),
        ([node_bin, "--role", "superserver"], "bad role"),
        ([node_bin, "--role", "peer"], "no endpoints"),
        ([node_bin, "--role", "peer", "--listen", "nonsense"],
         "unparseable listen address"),
    ]
    for cmd, what in cases:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=60)
        check(proc.returncode != 0, f"{what}: expected nonzero exit")
        check(proc.stderr.strip() != "",
              f"{what}: expected a diagnostic on stderr")
    print(f"check_node: CLI rejects {len(cases)} malformed invocations")


def main():
    if len(sys.argv) != 3:
        fail("usage: check_node.py <icollect_cluster> <icollect_node>")
    cluster_bin, node_bin = sys.argv[1], sys.argv[2]
    with tempfile.TemporaryDirectory(prefix="icollect_node_check_") as tmp:
        check_cluster(cluster_bin, tmp)
        check_tcp(node_bin, tmp)
        check_cli_errors(cluster_bin, node_bin)
    print("check_node: all checks passed")


if __name__ == "__main__":
    main()
