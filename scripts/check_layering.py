#!/usr/bin/env python3
"""Layering gate for the protocol core.

src/proto/ is the transport- and clock-agnostic Sec. 2 state machine.
It may depend on the pure foundations only:

    proto -> {proto, coding, common, gf, obs}

and must never reach — directly or transitively — into any driver
layer: net/, node/, p2p/, sim/, wire/ (nor the orchestration layers
core/, ode/, runner/, stats/, workload/). A single include from a
driver layer would let transport or event-loop concerns leak back into
the shared core, silently undoing the refactor this gate protects.

The check resolves quoted project includes transitively: every header
reachable from any file under src/proto/ must itself live in an
allowed layer. System/angle includes are ignored.

Usage: check_layering.py <repo-root>
Exits 0 when the closure is clean, 1 with a report otherwise.
"""

import re
import sys
from pathlib import Path

ALLOWED_LAYERS = {"proto", "coding", "common", "gf", "obs"}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def project_includes(path: Path) -> list[str]:
    includes = []
    for line in path.read_text(encoding="utf-8").splitlines():
        m = INCLUDE_RE.match(line)
        if m:
            includes.append(m.group(1))
    return includes


def main() -> int:
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <repo-root>", file=sys.stderr)
        return 2
    src = Path(sys.argv[1]) / "src"
    proto_dir = src / "proto"
    roots = sorted(
        p for p in proto_dir.iterdir() if p.suffix in {".h", ".cpp"}
    )
    if not roots:
        print(f"no sources found under {proto_dir}", file=sys.stderr)
        return 2

    violations = []
    seen = set()
    # Work items are (file, include-chain-that-reached-it) so a
    # violation report shows the full path from src/proto/ to the
    # offending header.
    stack = [(p, [p.relative_to(src).as_posix()]) for p in roots]
    while stack:
        path, chain = stack.pop()
        if path in seen:
            continue
        seen.add(path)
        for inc in project_includes(path):
            target = src / inc
            if not target.is_file():
                # Quoted include that is not a project header (e.g. a
                # same-directory relative include). Try relative to the
                # including file before giving up.
                target = path.parent / inc
                if not target.is_file():
                    continue
            rel = target.relative_to(src).as_posix()
            layer = rel.split("/", 1)[0]
            if layer not in ALLOWED_LAYERS:
                violations.append(" -> ".join(chain + [rel]))
            else:
                stack.append((target, chain + [rel]))

    if violations:
        print("proto layering violations (include chains from src/proto/):")
        for v in sorted(violations):
            print(f"  {v}")
        print(
            f"\nsrc/proto/ may only include layers: "
            f"{', '.join(sorted(ALLOWED_LAYERS))}"
        )
        return 1

    print(
        f"proto layering OK: {len(seen)} files in closure, "
        f"all within {{{', '.join(sorted(ALLOWED_LAYERS))}}}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
