#!/usr/bin/env python3
"""Byte-identical determinism gate for the protocol-core refactor.

Runs a tool with a fixed seeded command line and compares its combined
stdout+stderr byte for byte against a golden capture taken before the
Sec. 2 state machine was extracted into src/proto/. Any drift — one
extra RNG draw, a reordered event, a changed counter — shows up as a
diff here, which is exactly the failure mode a shared-core refactor
must guard against.

Usage: check_golden.py [--expect-exit N] <golden-file> <tool> [args...]
The tool's exit code must equal N (default 0) — the drop-on-ack
cluster golden intentionally captures an incomplete run that exits 1.
Exits 0 on a byte-identical match, 1 with a unified diff otherwise.
"""

import difflib
import subprocess
import sys
from pathlib import Path


def main() -> int:
    argv = sys.argv[1:]
    expect_exit = 0
    if argv and argv[0] == "--expect-exit":
        expect_exit = int(argv[1])
        argv = argv[2:]
    if len(argv) < 2:
        print(f"usage: {sys.argv[0]} [--expect-exit N] "
              f"<golden-file> <tool> [args...]", file=sys.stderr)
        return 2
    golden_path = Path(argv[0])
    cmd = argv[1:]

    expected = golden_path.read_bytes()
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, check=False)
    if proc.returncode != expect_exit:
        print(f"tool exited {proc.returncode} "
              f"(expected {expect_exit}): {' '.join(cmd)}",
              file=sys.stderr)
        sys.stdout.buffer.write(proc.stdout)
        return 1
    if proc.stdout == expected:
        print(f"golden OK: {golden_path.name} "
              f"({len(expected)} bytes, byte-identical)")
        return 0

    print(f"golden MISMATCH: {golden_path.name}", file=sys.stderr)
    diff = difflib.unified_diff(
        expected.decode(errors="replace").splitlines(keepends=True),
        proc.stdout.decode(errors="replace").splitlines(keepends=True),
        fromfile=str(golden_path), tofile="actual")
    sys.stderr.writelines(list(diff)[:200])
    return 1


if __name__ == "__main__":
    sys.exit(main())
