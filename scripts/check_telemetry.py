#!/usr/bin/env python3
"""End-to-end validation of an icollect_sim telemetry bundle.

Runs the simulator CLI with every telemetry flag enabled, then checks
that the emitted bundle is complete and self-consistent:

  config.json       parses; carries the seed and peer count
  snapshots.jsonl   >= 10 rows; required columns; nondecreasing t
  snapshots.csv     same series as the JSONL (+ header row)
  trace.jsonl       parses; kinds stay within the requested filter
  summary.json      parses; carries the headline report metrics
  profile.json      parses; names the GF kernel; every scope has
                    count/total_ns

Usage: check_telemetry.py /path/to/icollect_sim [bundle_dir]
Exits nonzero with a message on the first failed check.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile

REQUIRED_SNAPSHOT_KEYS = [
    "t",
    "net.segments_injected",
    "net.gossip_sent",
    "net.blocks_per_peer",
    "net.throughput",
]

TRACE_FILTER = ["gossip", "pull", "decode", "gossip-lost"]


def fail(msg):
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check(cond, msg):
    if not cond:
        fail(msg)


def load_json_file(path):
    check(os.path.exists(path), f"missing {path}")
    with open(path) as f:
        try:
            return json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path} is not valid JSON: {e}")


def load_jsonl(path):
    check(os.path.exists(path), f"missing {path}")
    rows = []
    with open(path) as f:
        for i, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as e:
                fail(f"{path}:{i} is not valid JSON: {e}")
    return rows


def main():
    if len(sys.argv) < 2:
        fail("usage: check_telemetry.py /path/to/icollect_sim [bundle_dir]")
    sim = sys.argv[1]
    check(os.path.exists(sim), f"simulator binary not found: {sim}")

    if len(sys.argv) > 2:
        bundle = sys.argv[2]
        cleanup = False
    else:
        bundle = tempfile.mkdtemp(prefix="icollect_telemetry_")
        cleanup = True

    cmd = [
        sim,
        "peers=60", "lambda=8", "s=4", "mu=10", "c=3", "buffer=40",
        "churn=20", "warm=2", "measure=8", "ode=0",
        f"--metrics-out={bundle}",
        "--metrics-interval=0.5",
        "--trace-out",
        f"--trace-filter={','.join(TRACE_FILTER)}",
        "--profile",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=240)
    check(proc.returncode == 0,
          f"simulator exited {proc.returncode}:\n{proc.stderr}")

    # -- config.json ------------------------------------------------------
    config = load_json_file(os.path.join(bundle, "config.json"))
    check("seed" in config, "config.json lacks 'seed'")
    check(config.get("gf_kernel") in ("scalar", "ssse3", "avx2"),
          f"config.json gf_kernel invalid: {config.get('gf_kernel')!r}")
    check(config.get("peers") == 60, "config.json peer count mismatch")
    check(isinstance(config.get("churn"), dict) and config["churn"]["enabled"],
          "config.json churn echo wrong")

    # -- snapshots.jsonl --------------------------------------------------
    snaps = load_jsonl(os.path.join(bundle, "snapshots.jsonl"))
    check(len(snaps) >= 10,
          f"expected >= 10 snapshots, got {len(snaps)}")
    for key in REQUIRED_SNAPSHOT_KEYS:
        check(all(key in row for row in snaps),
              f"snapshot rows lack required key '{key}'")
    times = [row["t"] for row in snaps]
    check(all(b >= a for a, b in zip(times, times[1:])),
          "snapshot times are not nondecreasing")
    check(snaps[-1]["net.segments_injected"] >=
          snaps[0]["net.segments_injected"],
          "lifetime counter decreased across snapshots")

    # -- snapshots.csv ----------------------------------------------------
    csv_path = os.path.join(bundle, "snapshots.csv")
    check(os.path.exists(csv_path), "missing snapshots.csv")
    with open(csv_path) as f:
        csv_lines = [ln for ln in f.read().splitlines() if ln]
    check(len(csv_lines) == len(snaps) + 1,
          f"CSV rows ({len(csv_lines)}) != JSONL rows + header "
          f"({len(snaps) + 1})")
    header = csv_lines[0].split(",")
    check(header[0] == "t" and "net.throughput" in header,
          f"unexpected CSV header: {csv_lines[0][:120]}")

    # -- trace.jsonl ------------------------------------------------------
    trace = load_jsonl(os.path.join(bundle, "trace.jsonl"))
    check(len(trace) > 0, "trace.jsonl is empty")
    kinds = {ev["kind"] for ev in trace}
    check(kinds <= set(TRACE_FILTER),
          f"trace contains kinds outside the filter: "
          f"{kinds - set(TRACE_FILTER)}")
    for ev in trace[:100]:
        for key in ("t", "kind", "slot", "origin", "seq", "aux"):
            check(key in ev, f"trace event lacks '{key}': {ev}")

    # -- summary.json -----------------------------------------------------
    summary = load_json_file(os.path.join(bundle, "summary.json"))
    for key in ("throughput", "normalized_throughput", "segments_injected",
                "saved"):
        check(key in summary, f"summary.json lacks '{key}'")

    # -- profile.json -----------------------------------------------------
    profile = load_json_file(os.path.join(bundle, "profile.json"))
    check(profile.get("gf_kernel") == config["gf_kernel"],
          "profile.json gf_kernel disagrees with config.json")
    scopes = profile.get("scopes")
    check(isinstance(scopes, dict) and len(scopes) > 0,
          "profile.json lacks a non-empty 'scopes' object")
    for scope, stat in scopes.items():
        check("count" in stat and "total_ns" in stat,
              f"profile scope '{scope}' lacks count/total_ns")
    check(any(stat["count"] > 0 for stat in scopes.values()),
          "profiler recorded no events")

    if cleanup:
        shutil.rmtree(bundle, ignore_errors=True)
    print(f"check_telemetry: OK ({len(snaps)} snapshots, "
          f"{len(trace)} trace events, {len(scopes)} profiled scopes, "
          f"gf_kernel={profile['gf_kernel']})")


if __name__ == "__main__":
    main()
