#!/usr/bin/env bash
# One-shot reproduction: build, test, regenerate every figure/table.
#
#   scripts/reproduce.sh [build-dir]
#
# Environment:
#   ICOLLECT_BENCH_SCALE  population/duration multiplier (default 1)
#   ICOLLECT_BENCH_REPS   seeds averaged per simulated point (default 1)
#   ICOLLECT_CSV_DIR      also mirror every table into CSV files
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"

ctest --test-dir "$BUILD_DIR" --output-on-failure 2>&1 | tee test_output.txt

{
  for b in "$BUILD_DIR"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "===== $(basename "$b") ====="
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

echo "done: test_output.txt, bench_output.txt"
