#!/usr/bin/env python3
"""End-to-end validation of live-runtime telemetry.

Four layers of checks:

  1. Loopback cluster (icollect_cluster): a run with --metrics-out and
     --trace-out must emit schema-valid JSONL (monotonic time column,
     nonzero transport/wire/node counters, pull-RTT quantile columns),
     a `stats` block in the JSON summary with plausible latency
     quantiles, and an identical summary with telemetry off — proving
     instrumentation never perturbs the seeded run.
  2. Trace JSONL: every row parses, kinds come from the protocol event
     vocabulary, timestamps are nondecreasing, and inject/decode counts
     reconcile with the summary.
  3. Real TCP (icollect_node): a server + two peer processes finish a
     collection with --metrics-out on the server; the server's JSONL
     must show nonzero tcp.* and node.* counters, and a SIGUSR1 sent
     while the server is alive must produce a parseable one-line stats
     dump on stderr.
  4. CLI contract: bad --metrics-interval and unwritable --metrics-out
     or --trace-out paths must exit 2 before any run starts.

Usage: check_node_telemetry.py /path/to/icollect_cluster /path/to/icollect_node
Exits nonzero with a message on the first failed check.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

TRACE_KINDS = {"inject", "gossip", "ttl", "pull", "decode",
               "lost", "depart", "gossip-lost"}


def fail(msg):
    print(f"check_node_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check(cond, msg):
    if not cond:
        fail(msg)


def free_port():
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def parse_jsonl(path, what):
    check(os.path.exists(path), f"missing {what} at {path}")
    rows = []
    with open(path) as f:
        for i, line in enumerate(f):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as e:
                fail(f"{what} line {i + 1} is not JSON: {e}")
    check(rows, f"{what} is empty")
    return rows


def check_latency_block(block, what):
    for key in ("count", "p50", "p90", "p99", "max"):
        check(key in block, f"{what} missing '{key}'")
    check(block["count"] > 0, f"{what} recorded no samples")
    check(0.0 < block["p50"] <= block["p90"] <= block["p99"] <=
          block["max"], f"{what} quantiles not ordered: {block}")


def check_cluster(cluster_bin, tmp):
    metrics = os.path.join(tmp, "cluster_metrics.jsonl")
    trace = os.path.join(tmp, "cluster_trace.jsonl")
    base = [
        cluster_bin,
        "--peers", "6", "--servers", "2", "--segments-per-peer", "3",
        "--lambda", "6", "--mu", "4", "--gamma", "1",
        "--server-rate", "24", "--max-time", "300", "--seed", "5",
    ]

    def run(extra):
        proc = subprocess.run(base + extra, capture_output=True,
                              text=True, timeout=240)
        check(proc.returncode == 0,
              f"cluster run failed (exit {proc.returncode}): {proc.stderr}")
        try:
            return json.loads(proc.stdout)
        except json.JSONDecodeError as e:
            fail(f"cluster summary is not JSON: {e}\n{proc.stdout}")

    summary = run(["--metrics-out", metrics, "--metrics-interval", "0.5",
                   "--trace-out", trace])
    check(summary["complete"] is True, "cluster did not complete")

    # --- the stats block -------------------------------------------------
    check("stats" in summary, "summary has no stats block")
    stats = summary["stats"]
    for key in ("frames_sent", "frames_received", "handshakes_ok",
                "loopback_deliveries", "loopback_bytes_out"):
        check(stats.get(key, 0) > 0, f"stats.{key} is zero")
    check(stats["wire_decode_errors"] == 0,
          "clean loopback run reported wire decode errors")
    check_latency_block(stats["pull_rtt"], "stats.pull_rtt")
    check_latency_block(stats["decode_latency"], "stats.decode_latency")
    check(stats["pull_rtt"]["max"] <= summary["t"],
          "pull RTT exceeds the whole run's duration")

    # --- the metrics JSONL -----------------------------------------------
    rows = parse_jsonl(metrics, "cluster metrics JSONL")
    times = [r["t"] for r in rows]
    check(times == sorted(times), "metrics time column not nondecreasing")
    last = rows[-1]
    for col in ("loopback.sends", "loopback.bytes_out", "loopback.bytes_in",
                "peer1.frames_sent", "peer1.frames_received",
                "peer1.handshakes_ok", "server0.pulls_sent",
                "server0.pull_rtt.count", "cluster.segments_decoded"):
        check(col in last, f"metrics rows missing column {col}")
        check(last[col] > 0, f"final metrics row has {col} == 0")
    check(last["server0.pull_rtt.p50"] > 0,
          "pull-RTT p50 column is zero despite recorded samples")
    check(last["peer1.wire_err.bad-crc"] == 0,
          "per-status wire error column nonzero on a clean run")

    # --- the trace JSONL -------------------------------------------------
    events = parse_jsonl(trace, "cluster trace JSONL")
    prev = 0.0
    injects = decodes = 0
    for e in events:
        check(e["kind"] in TRACE_KINDS, f"unknown trace kind {e['kind']}")
        check(e["t"] >= prev, "trace timestamps not nondecreasing")
        prev = e["t"]
        injects += e["kind"] == "inject"
        decodes += e["kind"] == "decode"
    check(injects == summary["segments_injected"],
          f"{injects} inject events vs "
          f"{summary['segments_injected']} injected segments")
    check(decodes == summary["segments_injected"] * 2,
          "each of 2 servers should trace each segment's decode")

    # --- telemetry must not perturb the run ------------------------------
    check(run([]) == summary,
          "summary differs between telemetry-on and telemetry-off runs")
    print("check_node_telemetry: loopback cluster telemetry OK "
          f"({len(rows)} metric rows, {len(events)} trace events)")


def wait_listening(port, deadline=10.0):
    t0 = time.monotonic()
    while time.monotonic() - t0 < deadline:
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=0.5):
                return True
        except OSError:
            time.sleep(0.05)
    return False


def check_tcp(node_bin, tmp):
    server_port = free_port()
    peer_port = free_port()
    server_metrics = os.path.join(tmp, "server_metrics.jsonl")
    common = ["--segment-size", "4", "--payload-bytes", "32",
              "--gamma", "0.2", "--duration", "60"]
    server = subprocess.Popen(
        [node_bin, "--role", "server",
         "--listen", f"127.0.0.1:{server_port}",
         "--expect-segments", "4", "--pull-rate", "50", "--seed", "9",
         "--metrics-out", server_metrics, "--metrics-interval", "0.2"]
        + common,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)

    # Poke the server while it is certainly alive (idle, pre-peers): the
    # poll loop must service the flag and print one stats line.
    check(wait_listening(server_port), "server never started listening")
    server.send_signal(signal.SIGUSR1)
    time.sleep(0.3)

    peer1 = subprocess.Popen(
        [node_bin, "--role", "peer",
         "--listen", f"127.0.0.1:{peer_port}",
         "--connect", f"127.0.0.1:{server_port}",
         "--segments", "2", "--lambda", "8", "--mu", "6", "--seed", "9"]
        + common,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    peer2 = subprocess.Popen(
        [node_bin, "--role", "peer",
         "--connect", f"127.0.0.1:{server_port}",
         "--connect", f"127.0.0.1:{peer_port}",
         "--segments", "2", "--lambda", "8", "--mu", "6", "--seed", "10"]
        + common,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)

    procs = {"server": server, "peer1": peer1, "peer2": peer2}
    errs = {}
    for name, proc in procs.items():
        try:
            _, errs[name] = proc.communicate(timeout=120)
        except subprocess.TimeoutExpired:
            for p in procs.values():
                p.kill()
            fail(f"{name} did not finish within the wall-clock budget")
        check(proc.returncode == 0,
              f"{name} exited {proc.returncode}: {errs[name]}")

    # --- the SIGUSR1 dump ------------------------------------------------
    dumps = [line for line in errs["server"].splitlines()
             if line.startswith("SIGUSR1 stats ")]
    check(dumps, "server stderr has no SIGUSR1 stats line")
    try:
        dump = json.loads(dumps[0][len("SIGUSR1 stats "):])
    except json.JSONDecodeError as e:
        fail(f"SIGUSR1 dump is not JSON: {e}\n{dumps[0]}")
    check("t" in dump and "tcp.accepts" in dump and
          "node.frames_sent" in dump,
          f"SIGUSR1 dump missing expected columns: {sorted(dump)[:8]}")

    # --- the wall-clock metrics JSONL ------------------------------------
    rows = parse_jsonl(server_metrics, "server metrics JSONL")
    times = [r["t"] for r in rows]
    check(times == sorted(times),
          "server metrics time column not nondecreasing")
    last = rows[-1]
    for col in ("tcp.accepts", "tcp.bytes_in", "tcp.bytes_out",
                "node.frames_sent", "node.frames_received",
                "node.handshakes_ok", "node.pulls_sent",
                "node.pull_rtt.count"):
        check(col in last, f"server metrics missing column {col}")
        check(last[col] > 0, f"final server metrics row has {col} == 0")
    check(last["node.segments_decoded"] >= 4,
          "server metrics never reached 4 decoded segments")
    # RTT is stamped off the node's timer wheel, so a localhost reply
    # faster than one tick legitimately records 0 — require presence and
    # ordering here; the loopback check above asserts nonzero quantiles.
    check(last["node.pull_rtt.p50"] <= last["node.pull_rtt.max"],
          "wall-clock pull-RTT quantiles not ordered")
    print("check_node_telemetry: real-TCP telemetry OK "
          f"({len(rows)} metric rows, SIGUSR1 dump verified)")


def check_cli_errors(cluster_bin, node_bin, tmp):
    unwritable = os.path.join(tmp, "no-such-dir", "out.jsonl")
    cases = [
        ([cluster_bin, "--peers", "4", "--metrics-interval", "0"],
         "cluster zero metrics interval"),
        ([cluster_bin, "--peers", "4", "--metrics-interval", "-1"],
         "cluster negative metrics interval"),
        ([cluster_bin, "--peers", "4", "--metrics-out", unwritable],
         "cluster unwritable metrics path"),
        ([cluster_bin, "--peers", "4", "--trace-out", unwritable],
         "cluster unwritable trace path"),
        ([node_bin, "--role", "server",
          "--listen", f"127.0.0.1:{free_port()}",
          "--metrics-interval", "0"],
         "node zero metrics interval"),
        ([node_bin, "--role", "server",
          "--listen", f"127.0.0.1:{free_port()}",
          "--metrics-out", unwritable],
         "node unwritable metrics path"),
        ([node_bin, "--role", "server",
          "--listen", f"127.0.0.1:{free_port()}",
          "--trace-out", unwritable],
         "node unwritable trace path"),
    ]
    for cmd, what in cases:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=60)
        check(proc.returncode == 2,
              f"{what}: expected exit 2, got {proc.returncode}")
        check(proc.stderr.strip() != "",
              f"{what}: expected a diagnostic on stderr")
    print(f"check_node_telemetry: CLI rejects {len(cases)} bad "
          "telemetry invocations with exit 2")


def main():
    if len(sys.argv) != 3:
        fail("usage: check_node_telemetry.py <icollect_cluster> "
             "<icollect_node>")
    cluster_bin, node_bin = sys.argv[1], sys.argv[2]
    with tempfile.TemporaryDirectory(
            prefix="icollect_node_telemetry_") as tmp:
        check_cluster(cluster_bin, tmp)
        check_tcp(node_bin, tmp)
        check_cli_errors(cluster_bin, node_bin, tmp)
    print("check_node_telemetry: all checks passed")


if __name__ == "__main__":
    main()
