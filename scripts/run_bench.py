#!/usr/bin/env python3
"""Run the GF(2^8) kernel micro-benchmarks and distill the results into a
machine-readable baseline (BENCH_gf_kernels.json).

The benchmark binaries register each bulk primitive once per kernel the
CPU supports ("BM_AddScaled<avx2>/4096"); this script runs them with
google-benchmark's JSON reporter, groups the series by (operation,
kernel, size), and emits:

  {
    "schema": "icollect-gf-bench/1",
    "kernels": ["scalar", "ssse3", ...],          # as measured
    "bulk_mb_per_s": {op: {kernel: {size: MB/s}}},
    "decode_blocks_per_s": {kernel: {s: blocks/s}},
    "speedup_vs_scalar": {op: {kernel: x}},       # at the largest size
  }

Also covers the replica engine: `--runner` times a fixed sweep grid
through `icollect_sweep` serially (--jobs=1) and with every hardware
thread, verifies the outputs are byte-identical (the determinism
contract), and writes BENCH_runner.json:

  {
    "schema": "icollect-runner-bench/1",
    "hardware_threads": N,                 # of the measuring machine
    "grid_cells": C, "replicas": R,
    "serial_seconds": x, "parallel_jobs": J, "parallel_seconds": y,
    "speedup": x/y,                        # honest: 1-core boxes get ~1
    "deterministic": true,
  }

And the live-node transport: `--node` drives icollect_loadgen fan-in
against one icollect_node server per (backend, connection-count) case
and writes BENCH_node.json:

  {
    "schema": "icollect-node-bench/1",
    "cases": [ {mode, server_backend, conns, pull_rate_demanded,
                frames_per_s, pull_round_trips_per_s, server_cpu_s,
                frames_per_server_cpu_s, server_pull_rtt_s, ...} ],
    "epoll_vs_poll_frames_speedup": x,     # saturation, shared conns
    "epoll_vs_poll_cpu_efficiency": y,     # demand-limited, many conns
  }

Two regimes per baseline: "saturation" cases demand more pulls than
either side can serve (end-to-end frames/s), and "efficiency" cases
demand a rate both backends meet across many mostly-idle connections —
there poll(2) burns a core re-scanning all n fds every tick while
epoll wakes on the ready few, and frames per server-CPU-second is the
metric that shows it.

Usage:
  run_bench.py [--build-dir DIR] [--out FILE] [--quick]
  run_bench.py --validate FILE          # schema check only, no benchmarks
  run_bench.py --runner [--runner-out FILE] [--quick]
  run_bench.py --validate-runner FILE
  run_bench.py --node [--node-out FILE] [--quick]
  run_bench.py --validate-node FILE

--quick shortens the measurement window (CI smoke); the committed
baseline should be produced without it. Exits nonzero on any failure.
"""

import argparse
import json
import os
import re
import socket
import subprocess
import sys
import time

SCHEMA = "icollect-gf-bench/1"
RUNNER_SCHEMA = "icollect-runner-bench/1"
NODE_SCHEMA = "icollect-node-bench/1"
NAME_RE = re.compile(r"^BM_(\w+)<(\w+)>/(\d+)$")
BULK_OPS = ("AddScaled", "ScaleAssign", "AddAssign", "Dot")


def fail(msg):
    print(f"run_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_benchmark(binary, bench_filter, min_time):
    if not os.path.exists(binary):
        fail(f"benchmark binary not found: {binary} (build the repo first)")
    cmd = [
        binary,
        f"--benchmark_filter={bench_filter}",
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=1800)
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        fail(f"{binary} did not emit valid JSON: {e}")


def parse_series(report):
    """-> {(op, kernel, size): benchmark-entry} for kernel-tagged runs."""
    out = {}
    for entry in report.get("benchmarks", []):
        m = NAME_RE.match(entry.get("name", ""))
        if m:
            out[(m.group(1), m.group(2), int(m.group(3)))] = entry
    return out


def build_baseline(gf_series, codec_series):
    kernels = sorted({k for (_, k, _) in gf_series}, key="scalar ssse3 avx2".split().index)
    bulk = {}
    for (op, kernel, size), entry in sorted(gf_series.items()):
        if op not in BULK_OPS:
            continue
        mbps = entry["bytes_per_second"] / 1e6
        bulk.setdefault(op, {}).setdefault(kernel, {})[str(size)] = round(mbps, 1)

    decode = {}
    for (op, kernel, s), entry in sorted(codec_series.items()):
        if op != "DecodeSegment":
            continue
        decode.setdefault(kernel, {})[str(s)] = round(
            entry["items_per_second"], 1)

    speedup = {}
    for op, per_kernel in bulk.items():
        scalar = per_kernel.get("scalar")
        if not scalar:
            continue
        top = max(scalar, key=int)
        for kernel, sizes in per_kernel.items():
            if kernel == "scalar" or top not in sizes:
                continue
            speedup.setdefault(op, {})[kernel] = round(
                sizes[top] / scalar[top], 2)

    return {
        "schema": SCHEMA,
        "kernels": kernels,
        "bulk_mb_per_s": bulk,
        "decode_blocks_per_s": decode,
        "speedup_vs_scalar": speedup,
    }


def validate(doc):
    if doc.get("schema") != SCHEMA:
        fail(f"schema mismatch: {doc.get('schema')!r} != {SCHEMA!r}")
    kernels = doc.get("kernels")
    if not isinstance(kernels, list) or "scalar" not in kernels:
        fail("'kernels' must be a list containing 'scalar'")
    bulk = doc.get("bulk_mb_per_s")
    if not isinstance(bulk, dict) or "AddScaled" not in bulk:
        fail("'bulk_mb_per_s' must map operations incl. 'AddScaled'")
    for op, per_kernel in bulk.items():
        for kernel, sizes in per_kernel.items():
            if kernel not in kernels:
                fail(f"bulk op '{op}' names unknown kernel '{kernel}'")
            for size, mbps in sizes.items():
                if not size.isdigit() or not isinstance(mbps, (int, float)):
                    fail(f"bulk series {op}/{kernel} malformed at {size!r}")
    decode = doc.get("decode_blocks_per_s")
    if not isinstance(decode, dict) or "scalar" not in decode:
        fail("'decode_blocks_per_s' must contain the scalar series")
    if not isinstance(doc.get("speedup_vs_scalar"), dict):
        fail("'speedup_vs_scalar' missing")


def run_sweep_timed(binary, out, jobs, replicas, grid):
    """Run one sweep; -> (wall seconds, output bytes)."""
    cmd = [binary, "--seed=42", f"--jobs={jobs}", f"--replicas={replicas}",
           f"--out={out}", *grid]
    start = time.monotonic()
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=3600)
    elapsed = time.monotonic() - start
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    with open(out, "rb") as f:
        return elapsed, f.read()


def build_runner_baseline(build_dir, quick):
    binary = os.path.join(build_dir, "tools", "icollect_sweep")
    if not os.path.exists(binary):
        fail(f"sweep binary not found: {binary} (build the repo first)")
    jobs = os.cpu_count() or 1
    replicas = 2 if quick else 8
    grid = ["--grid-s=1,5,10", "--grid-c=2,5",
            "--warm=2" if quick else "--warm=5",
            "--measure=4" if quick else "--measure=20",
            "peers=60" if quick else "peers=100",
            "lambda=10", "mu=5"]
    cells = 6  # |grid-s| x |grid-c|

    serial_s, serial_bytes = run_sweep_timed(
        binary, os.path.join(build_dir, "sweep_j1.jsonl"), 1, replicas, grid)
    parallel_s, parallel_bytes = run_sweep_timed(
        binary, os.path.join(build_dir, "sweep_jN.jsonl"), jobs, replicas,
        grid)
    if serial_bytes != parallel_bytes:
        fail(f"sweep output differs between --jobs=1 and --jobs={jobs}: "
             "determinism contract broken")
    return {
        "schema": RUNNER_SCHEMA,
        "hardware_threads": jobs,
        "grid_cells": cells,
        "replicas": replicas,
        "serial_seconds": round(serial_s, 3),
        "parallel_jobs": jobs,
        "parallel_seconds": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2) if parallel_s > 0 else 0.0,
        "deterministic": True,
    }


def validate_runner(doc):
    if doc.get("schema") != RUNNER_SCHEMA:
        fail(f"schema mismatch: {doc.get('schema')!r} != {RUNNER_SCHEMA!r}")
    for key in ("hardware_threads", "grid_cells", "replicas",
                "parallel_jobs"):
        if not isinstance(doc.get(key), int) or doc[key] < 1:
            fail(f"'{key}' must be a positive integer")
    for key in ("serial_seconds", "parallel_seconds", "speedup"):
        if not isinstance(doc.get(key), (int, float)) or doc[key] <= 0:
            fail(f"'{key}' must be a positive number")
    if doc.get("deterministic") is not True:
        fail("'deterministic' must be true — a baseline recorded from a "
             "nondeterministic engine is not a baseline")


def free_port():
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def proc_cpu_seconds(pid):
    """utime+stime of `pid` in seconds (0.0 once the process is gone)."""
    try:
        with open(f"/proc/{pid}/stat") as f:
            after_comm = f.read().rsplit(") ", 1)[1].split()
    except OSError:
        return 0.0
    # Fields 14 (utime) and 15 (stime), minus the 3 we stripped.
    ticks = int(after_comm[11]) + int(after_comm[12])
    return ticks / os.sysconf("SC_CLK_TCK")


def run_node_case(node_bin, loadgen_bin, build_dir, mode, backend, conns,
                  pull_rate, measure_s):
    """One fan-in run: a `backend` server vs `conns` loadgen peers."""
    port = free_port()
    metrics = os.path.join(build_dir, f"node_bench_{backend}_{conns}.jsonl")
    server = subprocess.Popen(
        [node_bin, "--role", "server", "--listen", f"127.0.0.1:{port}",
         "--backend", backend, "--pull-rate", str(pull_rate),
         "--segment-size", "4", "--duration", "300", "--seed", "1",
         "--metrics-out", metrics, "--metrics-interval", "0.5"],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    time.sleep(0.3)  # let the listener come up before the stampede
    cpu_before = proc_cpu_seconds(server.pid)
    try:
        proc = subprocess.run(
            [loadgen_bin, "--target", f"127.0.0.1:{port}",
             "--peers", str(conns), "--segments", "64",
             "--segment-size", "4", "--ramp", "2500",
             "--duration", "120", "--measure", str(measure_s),
             "--seed", "1"],
            capture_output=True, text=True, timeout=300)
        cpu_after = proc_cpu_seconds(server.pid)
    finally:
        server.kill()
        server.wait()
    if proc.returncode != 0:
        fail(f"loadgen ({backend}, {conns} conns) exited "
             f"{proc.returncode}:\n{proc.stderr}")
    try:
        report = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        fail(f"loadgen ({backend}, {conns} conns) emitted bad JSON: {e}")

    # Server-side pull RTT quantiles from the last metrics sample that
    # saw completed round-trips (the server exports them in seconds).
    rtt = {}
    if os.path.exists(metrics):
        with open(metrics) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                if row.get("node.pull_rtt.count", 0) > 0:
                    rtt = {q: row[f"node.pull_rtt.{q}"]
                           for q in ("p50", "p90", "p99", "max")}
    frames_total = report["frames_sent"] + report["frames_received"]
    server_cpu = max(cpu_after - cpu_before, 0.0)
    return {
        "mode": mode,
        "server_backend": backend,
        "conns": conns,
        "pull_rate_demanded": pull_rate,
        "conns_established": report["conns_established"],
        "handshakes_ok": report["handshakes_ok"],
        "goal_reached": report["goal_reached"],
        "measure_window_s": round(report["measure_window_s"], 3),
        "frames_per_s": round(report["frames_per_s"], 1),
        "pull_round_trips_per_s": round(
            report["pull_round_trips_per_s"], 1),
        "send_refusals": report["send_refusals"],
        "decode_errors": report["decode_errors"],
        "server_cpu_s": round(server_cpu, 3),
        "frames_per_server_cpu_s": round(frames_total / server_cpu, 1)
        if server_cpu > 0 else 0.0,
        "server_pull_rtt_s": rtt,
    }


def build_node_baseline(build_dir, quick):
    node_bin = os.path.join(build_dir, "tools", "icollect_node")
    loadgen_bin = os.path.join(build_dir, "tools", "icollect_loadgen")
    for binary in (node_bin, loadgen_bin):
        if not os.path.exists(binary):
            fail(f"binary not found: {binary} (build the repo first)")
    # Two regimes, both honest on a single-core box:
    #  - saturation: demand far beyond what either side can serve, so
    #    frames/s measures end-to-end throughput. With server and
    #    loadgen sharing the CPU, poll's O(n) scans amortize over
    #    ready-heavy wakeups — throughput parity here is expected, and
    #    the epoll story is that it holds 10k conns at all.
    #  - efficiency: demand both backends can meet, many mostly-idle
    #    conns. Here poll burns a core rebuilding and re-scanning n
    #    pollfds every tick while epoll wakes on the ready few; frames
    #    per server-CPU-second is the metric that exposes it.
    saturate_rate, limited_rate = 20000, 2000
    measure_s = 3 if quick else 8
    shared = 300 if quick else 2000
    big = 1000 if quick else 10000
    case = lambda *a: run_node_case(node_bin, loadgen_bin, build_dir, *a)
    cases = [
        case("saturation", "poll", shared, saturate_rate, measure_s),
        case("saturation", "epoll", shared, saturate_rate, measure_s),
        case("saturation", "epoll", big, saturate_rate, measure_s),
        case("efficiency", "poll", big, limited_rate, measure_s),
        case("efficiency", "epoll", big, limited_rate, measure_s),
    ]
    poll_fps = cases[0]["frames_per_s"]
    epoll_fps = cases[1]["frames_per_s"]
    poll_eff = cases[3]["frames_per_server_cpu_s"]
    epoll_eff = cases[4]["frames_per_server_cpu_s"]
    return {
        "schema": NODE_SCHEMA,
        "cases": cases,
        "epoll_vs_poll_frames_speedup": round(epoll_fps / poll_fps, 2)
        if poll_fps > 0 else 0.0,
        "epoll_vs_poll_cpu_efficiency": round(epoll_eff / poll_eff, 2)
        if poll_eff > 0 else 0.0,
    }


def validate_node(doc):
    if doc.get("schema") != NODE_SCHEMA:
        fail(f"schema mismatch: {doc.get('schema')!r} != {NODE_SCHEMA!r}")
    cases = doc.get("cases")
    if not isinstance(cases, list) or len(cases) < 2:
        fail("'cases' must list at least a poll and an epoll run")
    backends = set()
    for case in cases:
        backend = case.get("server_backend")
        if backend not in ("poll", "epoll"):
            fail(f"unknown server_backend {backend!r}")
        backends.add(backend)
        if case.get("mode") not in ("saturation", "efficiency"):
            fail(f"case {backend}/{case.get('conns')}: unknown mode "
                 f"{case.get('mode')!r}")
        for key in ("conns", "conns_established", "handshakes_ok",
                    "pull_rate_demanded"):
            if not isinstance(case.get(key), int) or case[key] < 1:
                fail(f"case {backend}/{case.get('conns')}: "
                     f"'{key}' must be a positive integer")
        if case["conns_established"] != case["conns"]:
            fail(f"case {backend}/{case['conns']}: not every "
                 "connection established — not a clean baseline")
        if case.get("goal_reached") is not True:
            fail(f"case {backend}/{case['conns']}: goal not reached")
        for key in ("frames_per_s", "pull_round_trips_per_s",
                    "frames_per_server_cpu_s"):
            if not isinstance(case.get(key), (int, float)) or case[key] <= 0:
                fail(f"case {backend}/{case['conns']}: "
                     f"'{key}' must be positive")
    if backends != {"poll", "epoll"}:
        fail("baseline must cover both the poll and epoll backends")
    for key in ("epoll_vs_poll_frames_speedup",
                "epoll_vs_poll_cpu_efficiency"):
        if not isinstance(doc.get(key), (int, float)) or doc[key] <= 0:
            fail(f"'{key}' must be positive")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--out", default="BENCH_gf_kernels.json")
    ap.add_argument("--quick", action="store_true",
                    help="short measurement window (CI smoke)")
    ap.add_argument("--validate", metavar="FILE",
                    help="validate an existing baseline and exit")
    ap.add_argument("--runner", action="store_true",
                    help="benchmark the replica engine instead of GF kernels")
    ap.add_argument("--runner-out", default="BENCH_runner.json")
    ap.add_argument("--validate-runner", metavar="FILE",
                    help="validate an existing runner baseline and exit")
    ap.add_argument("--node", action="store_true",
                    help="benchmark the live-node transports instead")
    ap.add_argument("--node-out", default="BENCH_node.json")
    ap.add_argument("--validate-node", metavar="FILE",
                    help="validate an existing node baseline and exit")
    args = ap.parse_args()

    if args.validate_node:
        if not os.path.exists(args.validate_node):
            fail(f"missing {args.validate_node}")
        with open(args.validate_node) as f:
            try:
                doc = json.load(f)
            except json.JSONDecodeError as e:
                fail(f"{args.validate_node} is not valid JSON: {e}")
        validate_node(doc)
        print(f"run_bench: OK {args.validate_node} "
              f"({len(doc['cases'])} cases, epoll vs poll CPU "
              f"efficiency {doc['epoll_vs_poll_cpu_efficiency']}x)")
        return

    if args.node:
        doc = build_node_baseline(args.build_dir, args.quick)
        validate_node(doc)
        with open(args.node_out, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        top = max(c["conns"] for c in doc["cases"])
        print(f"run_bench: wrote {args.node_out} "
              f"(epoll held {top} concurrent peers; CPU efficiency vs "
              f"poll {doc['epoll_vs_poll_cpu_efficiency']}x, saturated "
              f"frames speedup {doc['epoll_vs_poll_frames_speedup']}x)")
        return

    if args.validate_runner:
        if not os.path.exists(args.validate_runner):
            fail(f"missing {args.validate_runner}")
        with open(args.validate_runner) as f:
            try:
                doc = json.load(f)
            except json.JSONDecodeError as e:
                fail(f"{args.validate_runner} is not valid JSON: {e}")
        validate_runner(doc)
        print(f"run_bench: OK {args.validate_runner} "
              f"(speedup {doc['speedup']}x at "
              f"{doc['parallel_jobs']} jobs on "
              f"{doc['hardware_threads']} hardware threads)")
        return

    if args.runner:
        doc = build_runner_baseline(args.build_dir, args.quick)
        validate_runner(doc)
        with open(args.runner_out, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"run_bench: wrote {args.runner_out} "
              f"(serial {doc['serial_seconds']}s, parallel "
              f"{doc['parallel_seconds']}s at {doc['parallel_jobs']} jobs "
              f"-> {doc['speedup']}x; byte-deterministic)")
        return

    if args.validate:
        if not os.path.exists(args.validate):
            fail(f"missing {args.validate}")
        with open(args.validate) as f:
            try:
                doc = json.load(f)
            except json.JSONDecodeError as e:
                fail(f"{args.validate} is not valid JSON: {e}")
        validate(doc)
        print(f"run_bench: OK {args.validate} "
              f"(kernels: {', '.join(doc['kernels'])})")
        return

    min_time = "0.02" if args.quick else "0.2"
    gf_bin = os.path.join(args.build_dir, "bench", "micro_gf256")
    codec_bin = os.path.join(args.build_dir, "bench", "micro_codec")

    gf = parse_series(run_benchmark(
        gf_bin, "BM_(AddScaled|ScaleAssign|AddAssign|Dot)<", min_time))
    # POSIX ERE (the benchmark library's regex flavor): no \w / \d.
    sizes = "(20|40)" if args.quick else "[0-9]+"
    codec = parse_series(run_benchmark(
        codec_bin, f"BM_DecodeSegment<[a-z0-9]+>/{sizes}$", min_time))

    doc = build_baseline(gf, codec)
    validate(doc)
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")

    top = doc["speedup_vs_scalar"].get("AddScaled", {})
    print(f"run_bench: wrote {args.out} (kernels: "
          f"{', '.join(doc['kernels'])}; AddScaled speedup vs scalar: "
          f"{top or 'n/a'})")


if __name__ == "__main__":
    main()
