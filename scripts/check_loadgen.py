#!/usr/bin/env python3
"""End-to-end validation of the epoll reactor under loadgen fan-in.

One icollect_node server faces ~200 synthetic peers multiplexed by
icollect_loadgen over a single reactor. Checks:

  1. The run reaches its goal: every synthetic segment ACKed back to
     the loadgen, all handshakes completed, loadgen exits 0.
  2. The loadgen's JSON report conforms to the icollect-node-bench/1
     schema and its counters are self-consistent (nonzero frames both
     ways, nonzero pull round-trips, no decode errors, no refusals).
  3. Transport counters prove the reactor actually did reactor things:
     epoll wakeups, batched writev bytes, pool reuse.
  4. CLI contract: malformed loadgen invocations exit 2 with a
     diagnostic, not a hang or a crash.

On builds without epoll support the loadgen run falls back to the poll
backend; the reactor-specific counter checks then key off the backend
name the report declares, so the smoke stays meaningful everywhere.

Usage: check_loadgen.py /path/to/icollect_node /path/to/icollect_loadgen
Exits nonzero with a message on the first failed check.
"""

import json
import os
import socket
import subprocess
import sys

SCHEMA = "icollect-node-bench/1"

REQUIRED_FIELDS = [
    "schema", "backend", "conns_target", "conns_established",
    "handshakes_ok", "frames_sent", "frames_received", "pulls_answered",
    "acks_received", "send_refusals", "decode_errors", "segments_total",
    "segments_acked", "goal_reached", "measure_window_s", "frames_per_s",
    "pull_round_trips_per_s", "duration_s", "transport",
]


def fail(msg):
    print(f"check_loadgen: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check(cond, msg):
    if not cond:
        fail(msg)


def free_port():
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def run_loadgen(node_bin, loadgen_bin):
    port = free_port()
    peers = 200
    server = subprocess.Popen(
        [node_bin, "--role", "server",
         "--listen", f"127.0.0.1:{port}",
         "--pull-rate", "2000", "--segment-size", "4",
         "--duration", "120", "--seed", "3"],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    try:
        proc = subprocess.run(
            [loadgen_bin, "--target", f"127.0.0.1:{port}",
             "--peers", str(peers), "--segments", "32",
             "--segment-size", "4", "--ramp", "1000",
             "--duration", "60", "--measure", "3", "--seed", "2"],
            capture_output=True, text=True, timeout=180)
    finally:
        server.kill()
        server.wait()
    check(proc.returncode == 0,
          f"loadgen exited {proc.returncode}: {proc.stderr}")
    try:
        report = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        fail(f"loadgen report is not JSON: {e}\n{proc.stdout}")
    return report, peers


def check_report(report, peers):
    for field in REQUIRED_FIELDS:
        check(field in report, f"report missing field {field!r}")
    check(report["schema"] == SCHEMA,
          f"schema {report['schema']!r}, expected {SCHEMA!r}")
    check(report["goal_reached"] is True, "collection goal not reached")
    check(report["conns_established"] == peers,
          f"established {report['conns_established']}/{peers}")
    check(report["handshakes_ok"] == peers,
          f"handshakes {report['handshakes_ok']}/{peers}")
    check(report["segments_acked"] == report["segments_total"],
          "not every segment ACKed")
    check(report["frames_sent"] > 0 and report["frames_received"] > 0,
          "no frame traffic recorded")
    check(report["pulls_answered"] > 0, "server never pulled")
    check(report["decode_errors"] == 0, "frame decode errors on the wire")
    check(report["send_refusals"] == 0, "loadgen hit its own send cap")
    check(report["pull_round_trips_per_s"] > 0,
          "measurement window recorded no pull round-trips")
    print(f"check_loadgen: goal reached with {peers} peers over "
          f"{report['backend']} "
          f"(rt/s={report['pull_round_trips_per_s']:.0f}, "
          f"frames/s={report['frames_per_s']:.0f})")


def check_transport_counters(report):
    backend = report["backend"]
    t = report["transport"]

    def counter(name):
        key = f"{backend}.{name}"
        check(key in t, f"transport counters missing {key}")
        return t[key]

    check(counter("connects_ok") == report["conns_established"],
          "transport connects_ok disagrees with established count")
    check(counter("bytes_in") > 0 and counter("bytes_out") > 0,
          "transport byte counters are zero")
    if backend == "epoll":
        check(counter("wakeups") > 0, "no epoll wakeups recorded")
        check(counter("writev_calls") > 0, "no vectored writes recorded")
        check(counter("batched_bytes") > 0, "no batched bytes recorded")
        check(counter("pool_hits") > 0, "buffer pool never recycled")
        nshards = int(counter("shards"))
        check(nshards >= 1, "no reactor shards reported")
        spread = sum(int(t.get(f"{backend}.shard{i}.conns", 0))
                     for i in range(nshards))
        check(spread == report["conns_established"],
              f"shard conn gauges sum to {spread}, "
              f"expected {report['conns_established']}")
    print(f"check_loadgen: {backend} transport counters OK")


def check_cli_errors(loadgen_bin):
    cases = [
        ([loadgen_bin], "missing --target"),
        ([loadgen_bin, "--target", "nonsense"], "unparseable target"),
        ([loadgen_bin, "--target", "127.0.0.1:1", "--peers", "0"],
         "zero peers"),
        ([loadgen_bin, "--target", "127.0.0.1:1", "--bogus"],
         "unknown flag"),
        ([loadgen_bin, "--target", "127.0.0.1:1", "--backend", "carrier"],
         "unknown backend"),
    ]
    for cmd, what in cases:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=60)
        check(proc.returncode == 2, f"{what}: expected exit 2, "
              f"got {proc.returncode}")
        check(proc.stderr.strip() != "",
              f"{what}: expected a diagnostic on stderr")
    print(f"check_loadgen: CLI rejects {len(cases)} malformed invocations")


def main():
    if len(sys.argv) != 3:
        fail("usage: check_loadgen.py <icollect_node> <icollect_loadgen>")
    node_bin, loadgen_bin = sys.argv[1], sys.argv[2]
    check(os.path.exists(node_bin), f"no such binary: {node_bin}")
    check(os.path.exists(loadgen_bin), f"no such binary: {loadgen_bin}")
    report, peers = run_loadgen(node_bin, loadgen_bin)
    check_report(report, peers)
    check_transport_counters(report)
    check_cli_errors(loadgen_bin)
    print("check_loadgen: all checks passed")


if __name__ == "__main__":
    main()
